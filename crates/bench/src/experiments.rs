//! Reusable experiment drivers behind the `e*` binaries.
//!
//! Each driver returns the human-readable [`Table`] the binary prints plus
//! (for the randomized / sweep-shaped experiments) the [`SweepOutput`] it
//! was computed from, so the same code path serves three consumers: the
//! binaries, the golden-output tests, and the `BENCH_*.json` artifacts.

use crate::json::{Json, ToJson};
use crate::sweep::{Sweep, SweepOutput};
use crate::table::Table;
use hyperpath_core::baseline::gray_cycle_embedding;
use hyperpath_core::ccc_copies::{
    butterfly_multi_copy, ccc_multi_copy, ccc_multi_copy_with, WindowStrategy,
};
use hyperpath_core::cycles::theorem1;
use hyperpath_embedding::metrics::{multi_copy_metrics, multi_path_metrics};
use hyperpath_embedding::validate::{validate_multi_copy, validate_multi_path};
use hyperpath_ida::Ida;
use hyperpath_sim::bitslice::{
    count_lanes_256, streamed_all_bundles_ge, BitTrialBlock256, GrayCycleBundles, IndexedTrials,
    SlicedPaths,
};
use hyperpath_sim::chaos::random_plan;
use hyperpath_sim::delivery::{deliver_phase_plan_outcome, DeliveryConfig, PhaseSetup};
use hyperpath_sim::protocol::{deliver_adaptive_prepared, AdaptiveSetup, PlanNetwork};
use hyperpath_sim::routing::{ecube_path, random_permutation, CccRouter};
use hyperpath_sim::tenants::{
    run_tenants, run_tenants_planned, EngineReport, ExecMode, FaultRouting, FlowStats,
    TenantEngine, TenantFaultPlan, TenantPlan, TenantSpec, TenantsConfig,
};
use hyperpath_sim::{PacketSim, Worm, WormholeSim};
use hyperpath_topology::host::{BinomialTreePlan, GridPlan, Theorem1Plan, Theorem2Plan};
use std::sync::Arc;

const SIM_CAP: u64 = 10_000_000;

fn fetch(r: &Json, key: &str) -> u64 {
    r.get(key).and_then(Json::as_u64).expect("record field")
}

fn fetch_f(r: &Json, key: &str) -> f64 {
    r.get(key).and_then(Json::as_f64).expect("record field")
}

// ---------------------------------------------------------------------------
// E1 — m-packet cycle phase: Gray code vs Theorem 1 (Section 2).
// ---------------------------------------------------------------------------

/// One E1 grid point: cycle dimension and packets per cycle edge.
#[derive(Debug, Clone, Copy)]
pub struct CyclePoint {
    /// Hypercube dimension (the cycle has `2^n` nodes).
    pub n: u32,
    /// Packets per cycle edge in the phase.
    pub m: u64,
}

impl ToJson for CyclePoint {
    fn to_json(&self) -> Json {
        Json::object([("n", self.n.to_json()), ("m", self.m.to_json())])
    }
}

/// The default E1 grid over the given dimensions: `m ∈ {n/2, n, 4n, 16n}`.
pub fn e1_grid(ns: &[u32]) -> Vec<CyclePoint> {
    ns.iter()
        .flat_map(|&n| {
            [u64::from(n) / 2, u64::from(n), 4 * u64::from(n), 16 * u64::from(n)]
                .map(|m| CyclePoint { n, m })
        })
        .collect()
}

/// E1: simulates one m-packet phase of the `2^n`-cycle under the Gray-code
/// embedding, the free-running Theorem 1 embedding, and the certified
/// schedule. Deterministic (the grid point RNG goes unused).
pub fn e1_cycle_speedup(ns: &[u32]) -> (Table, SweepOutput) {
    let out = Sweep::new("e1_cycle_speedup", 0).run(e1_grid(ns), |p, _rng| {
        let gray = gray_cycle_embedding(p.n);
        let t1 = theorem1(p.n).expect("theorem 1");
        let g = PacketSim::phase_workload(&gray, p.m).run(SIM_CAP).makespan;
        let w = PacketSim::phase_workload(&t1.embedding, p.m).run(SIM_CAP).makespan;
        // Repeating the certified schedule back-to-back ships `packets`
        // packets every `cost` steps with zero conflicts.
        let sched = t1.cost * p.m.div_ceil(t1.packets);
        let best = w.min(sched);
        Json::object([
            ("gray_steps", g.to_json()),
            ("free_run", w.to_json()),
            ("scheduled", sched.to_json()),
            ("speedup", (g as f64 / best as f64).to_json()),
            ("half_m_bound", (p.m / 2).to_json()),
        ])
    });
    let mut t = Table::new(&[
        "n",
        "m",
        "gray steps",
        "free-run multipath",
        "scheduled multipath",
        "speedup",
        "m/2 bound",
    ]);
    for rec in &out.records {
        t.row(vec![
            fetch(&rec.params, "n").to_string(),
            fetch(&rec.params, "m").to_string(),
            fetch(&rec.result, "gray_steps").to_string(),
            fetch(&rec.result, "free_run").to_string(),
            fetch(&rec.result, "scheduled").to_string(),
            format!("{:.2}x", fetch_f(&rec.result, "speedup")),
            fetch(&rec.result, "half_m_bound").to_string(),
        ]);
    }
    (t, out)
}

// ---------------------------------------------------------------------------
// E10 — wormhole permutation routing: single path vs CCC-copy split
// (Section 7).
// ---------------------------------------------------------------------------

/// One E10 grid point: CCC parameter and message length.
#[derive(Debug, Clone, Copy)]
pub struct WormholePoint {
    /// CCC parameter (host is `Q_{n + log n}`).
    pub n: u32,
    /// Message length in flits.
    pub flits: u64,
}

impl ToJson for WormholePoint {
    fn to_json(&self) -> Json {
        Json::object([("n", self.n.to_json()), ("flits", self.flits.to_json())])
    }
}

/// The default E10 grid: `flits ∈ {16, 64, 256}` per dimension.
pub fn e10_grid(ns: &[u32]) -> Vec<WormholePoint> {
    ns.iter().flat_map(|&n| [16u64, 64, 256].map(|flits| WormholePoint { n, flits })).collect()
}

/// E10: routes a random permutation in wormhole mode, whole-message e-cube
/// worms vs `n` split worms over the Theorem 3 CCC copies. Each grid point
/// draws its permutation from its own ChaCha stream.
pub fn e10_wormhole(ns: &[u32], master_seed: u64) -> (Table, SweepOutput) {
    let out = Sweep::new("e10_wormhole", master_seed).run(e10_grid(ns), |p, rng| {
        let copies = ccc_multi_copy(p.n).expect("Theorem 3");
        let host = copies.multi_copy.host;
        let router = CccRouter::new(&copies);
        let perm = random_permutation(&host, rng);
        // Single path: the whole message as one worm on the e-cube path.
        let mut single = WormholeSim::new(host);
        for (src, &dst) in perm.iter().enumerate() {
            let src = src as u64;
            if src != dst {
                single.add_worm(Worm { path: ecube_path(src, dst), flits: p.flits });
            }
        }
        let r1 = single.run(SIM_CAP).makespan;
        // Split: n worms of flits/n flits along the CCC copy routes.
        let mut split = WormholeSim::new(host);
        let piece = (p.flits / u64::from(p.n)).max(1);
        for (src, &dst) in perm.iter().enumerate() {
            let src = src as u64;
            if src != dst {
                for route in router.routes(src, dst) {
                    split.add_worm(Worm { path: route, flits: piece });
                }
            }
        }
        let r2 = split.run(SIM_CAP).makespan;
        Json::object([
            ("host_dims", host.dims().to_json()),
            ("single_path", r1.to_json()),
            ("ccc_split", r2.to_json()),
            ("ratio", (r1 as f64 / r2 as f64).to_json()),
        ])
    });
    let mut t = Table::new(&["n (CCC)", "host", "M flits", "single-path", "ccc-split", "ratio"]);
    for rec in &out.records {
        t.row(vec![
            fetch(&rec.params, "n").to_string(),
            format!("Q_{}", fetch(&rec.result, "host_dims")),
            fetch(&rec.params, "flits").to_string(),
            fetch(&rec.result, "single_path").to_string(),
            fetch(&rec.result, "ccc_split").to_string(),
            format!("{:.2}x", fetch_f(&rec.result, "ratio")),
        ]);
    }
    (t, out)
}

// ---------------------------------------------------------------------------
// E12 — delivery probability under random link faults (Sections 1-2).
// ---------------------------------------------------------------------------

/// One E12 grid point: dimension and per-link fault probability.
#[derive(Debug, Clone, Copy)]
pub struct FaultPoint {
    /// Hypercube dimension.
    pub n: u32,
    /// Independent per-link failure probability.
    pub p: f64,
}

impl ToJson for FaultPoint {
    fn to_json(&self) -> Json {
        Json::object([("n", self.n.to_json()), ("p", self.p.to_json())])
    }
}

/// The default E12 grid: `p ∈ {0.0005, 0.002, 0.01, 0.05}` per dimension.
pub fn e12_grid(ns: &[u32]) -> Vec<FaultPoint> {
    ns.iter().flat_map(|&n| [0.0005f64, 0.002, 0.01, 0.05].map(|p| FaultPoint { n, p })).collect()
}

/// E12: Monte-Carlo phase delivery probability under random link faults,
/// with the delivery semantics cross-checked against the structural
/// estimate.
///
/// Each trial draws ONE fault set on the shared host `Q_n` and evaluates
/// every estimator against that same world:
///
/// * `gray_w1` / `struct_k1` / `struct_k_half` — structural: survival of
///   1 / 1 / `⌈w/2⌉` paths per bundle for the Gray single-path and
///   Theorem 1 embeddings;
/// * `sim_no_retry` / `sim_retry` — delivery: the outcome of one
///   dispersal phase with the `k = ⌈w/2⌉` threshold, without and with
///   retry rounds over the surviving paths.
///
/// All five columns now ride the 256-lane bit-sliced kernel
/// ([`SlicedPaths`] over [`BitTrialBlock256`], 256 trials per word
/// operation): the fault draws are static fail-stop and no trace is
/// requested, so the delivery columns take the fail-stop fast path —
/// [`SlicedPaths::all_bundles_recovered_256`] evaluates the per-lane
/// [`deliver_phase_prepared`](hyperpath_sim::delivery::deliver_phase_prepared)
/// grades straight from bundle survival words, skipping the packet engine
/// entirely. Each kernel lane replays the
/// scalar [`surviving_paths`](hyperpath_sim::faults::surviving_paths)
/// draw bit for bit, so the popcounts equal the engine-backed per-trial
/// booleans this sweep used to compute — pinned three ways by
/// `tests/delivery_conformance.rs` and `tests/fastpath_conformance.rs`
/// (kernel vs fast path vs engine), and `sim_no_retry == struct_k_half`,
/// `sim_retry == struct_k1` still hold exactly as before.
pub fn e12_faults(ns: &[u32], trials: u32, master_seed: u64) -> (Table, SweepOutput) {
    e12_faults_with_threads(ns, trials, master_seed, None)
}

/// [`e12_faults`] with a pinned worker count (the determinism tests run
/// the same sweep on 1 and 4 workers and require byte-identical JSON).
pub fn e12_faults_with_threads(
    ns: &[u32],
    trials: u32,
    master_seed: u64,
    threads: Option<usize>,
) -> (Table, SweepOutput) {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use rayon::prelude::*;

    let mut sweep = Sweep::new("e12_faults", master_seed);
    if let Some(t) = threads {
        sweep = sweep.threads(t);
    }
    let out = sweep.run(e12_grid(ns), move |p, rng| {
        let gray = gray_cycle_embedding(p.n);
        let t1 = theorem1(p.n).expect("theorem 1");
        let w = t1.claimed_width;
        let k_half = w.div_ceil(2);
        let host = t1.embedding.host;
        // Hoisted out of the trial loops: the bit-sliced path tables are
        // fault-independent, so no trial rebuilds them.
        let gray_paths = SlicedPaths::new(&gray);
        let t1_paths = SlicedPaths::new(&t1.embedding);
        // One seed per trial drawn *serially* from the point's stream: the
        // sweep's byte-stability across worker counts rests on this.
        let seeds: Vec<u64> = (0..trials).map(|_| rng.random()).collect();
        // Each 256-seed chunk becomes one BitTrialBlock256 whose lane `t`
        // replays trial `chunk_start + t`'s fault draw bit for bit (the
        // lane streams are independent, so the chunk width cannot change
        // the drawn bits), and the popcount tallies match the scalar
        // per-trial booleans exactly (u32 addition commutes, so worker
        // count cannot change the totals either).
        let chunks: Vec<&[u64]> = seeds.chunks(256).collect();
        let per_chunk: Vec<[u32; 5]> = chunks
            .into_par_iter()
            .map(|chunk| {
                let mut lane_rngs: Vec<StdRng> =
                    chunk.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
                let block = BitTrialBlock256::draw_compat(&host, p.p, &mut lane_rngs);
                [
                    count_lanes_256(gray_paths.all_bundles_ge_256(&block, 1)),
                    count_lanes_256(t1_paths.all_bundles_ge_256(&block, 1)),
                    count_lanes_256(t1_paths.all_bundles_ge_256(&block, k_half)),
                    count_lanes_256(t1_paths.all_bundles_recovered_256(&block, k_half, false)),
                    count_lanes_256(t1_paths.all_bundles_recovered_256(&block, k_half, true)),
                ]
            })
            .collect();
        let mut counts = [0u32; 5];
        for c in &per_chunk {
            for (a, &v) in counts.iter_mut().zip(c) {
                *a += v;
            }
        }
        let frac = |ok: u32| f64::from(ok) / f64::from(trials);
        Json::object([
            ("width", w.to_json()),
            ("trials", trials.to_json()),
            ("gray_w1", frac(counts[0]).to_json()),
            ("struct_k1", frac(counts[1]).to_json()),
            ("struct_k_half", frac(counts[2]).to_json()),
            ("sim_no_retry", frac(counts[3]).to_json()),
            ("sim_retry", frac(counts[4]).to_json()),
        ])
    });
    let mut t = Table::new(&[
        "n",
        "p(link fail)",
        "gray (w=1)",
        "struct k=1",
        "struct k=⌈w/2⌉",
        "sim no-retry",
        "sim retry",
    ]);
    for rec in &out.records {
        t.row(vec![
            fetch(&rec.params, "n").to_string(),
            format!("{}", fetch_f(&rec.params, "p")),
            format!("{:.3}", fetch_f(&rec.result, "gray_w1")),
            format!("{:.3}", fetch_f(&rec.result, "struct_k1")),
            format!("{:.3}", fetch_f(&rec.result, "struct_k_half")),
            format!("{:.3}", fetch_f(&rec.result, "sim_no_retry")),
            format!("{:.3}", fetch_f(&rec.result, "sim_retry")),
        ]);
    }
    (t, out)
}

// ---------------------------------------------------------------------------
// E18 — structural fault estimators at scale on the implicit host.
// ---------------------------------------------------------------------------

/// One E18 grid point: dimension and per-link fault probability (same axes
/// as E12, but reached through the implicit topology layer).
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Hypercube dimension (1M nodes at `n = 20`, 16M at `n = 24`).
    pub n: u32,
    /// Independent per-link failure probability.
    pub p: f64,
}

impl ToJson for ScalePoint {
    fn to_json(&self) -> Json {
        Json::object([("n", self.n.to_json()), ("p", self.p.to_json())])
    }
}

/// The default E18 grid: the E12 fault probabilities per dimension.
pub fn e18_grid(ns: &[u32]) -> Vec<ScalePoint> {
    ns.iter().flat_map(|&n| [0.0005f64, 0.002, 0.01, 0.05].map(|p| ScalePoint { n, p })).collect()
}

/// E18: the E12 structural columns (`gray_w1` / `struct_k1` /
/// `struct_k_half`) at dimensions the materialized pipeline cannot reach.
///
/// Nothing per-link or per-bundle is ever allocated: the Theorem 1
/// embedding is an implicit [`Theorem1Plan`] (`O(2^{n/2})` words), the
/// Gray baseline is [`GrayCycleBundles`] (three words), fault trials are
/// [`IndexedTrials`] (per-link alive words recomputed from the seed), and
/// each 64-trial block is folded by [`streamed_all_bundles_ge`] — so
/// `n = 20..=24` runs in megabytes. Per point, both estimators share the
/// block's fault world, preserving E12's "same draws" discipline; block
/// seeds are drawn serially from the point's ChaCha stream and all folds
/// commute, so the artifact is byte-identical at any worker count (CI's
/// `scale-smoke` job pins this).
///
/// There is no measured-simulation column here: packet simulation remains
/// a materialized-scale (`n ≤ 12`) concern, which is exactly the split the
/// implicit layer is for.
pub fn e18_scale(ns: &[u32], trials: u32, master_seed: u64) -> (Table, SweepOutput) {
    e18_scale_with_threads(ns, trials, master_seed, None)
}

/// [`e18_scale`] with a pinned worker count (for the byte-identity tests).
pub fn e18_scale_with_threads(
    ns: &[u32],
    trials: u32,
    master_seed: u64,
    threads: Option<usize>,
) -> (Table, SweepOutput) {
    use rand::RngExt;
    use std::collections::HashMap;
    use std::sync::Arc;

    // Plans are deterministic and (row-subcube decomposition) not free to
    // build, so build one per distinct dimension up front, serially.
    let mut plans: HashMap<u32, Arc<Theorem1Plan>> = HashMap::new();
    for &n in ns {
        plans.entry(n).or_insert_with(|| Arc::new(Theorem1Plan::new(n).expect("theorem 1 plan")));
    }

    let mut sweep = Sweep::new("e18_scale", master_seed);
    if let Some(t) = threads {
        sweep = sweep.threads(t);
    }
    let out = sweep.run(e18_grid(ns), move |pt, rng| {
        let plan = &plans[&pt.n];
        let gray = GrayCycleBundles::new(pt.n);
        let w = plan.claimed_width();
        let k_half = (w as usize).div_ceil(2);
        // One seed per 64-trial block, drawn serially from the point's
        // stream; block tallies are popcounts folded by u32 addition,
        // which commutes, so worker count cannot change the totals.
        let mut counts = [0u32; 3];
        let mut remaining = trials;
        while remaining > 0 {
            let lanes = remaining.min(64);
            remaining -= lanes;
            let block = IndexedTrials::new(rng.random(), pt.p, lanes);
            let g = streamed_all_bundles_ge(&gray, &block, &[1]);
            let s = streamed_all_bundles_ge(plan.as_ref(), &block, &[1, k_half]);
            counts[0] += g[0].count_ones();
            counts[1] += s[0].count_ones();
            counts[2] += s[1].count_ones();
        }
        let frac = |ok: u32| f64::from(ok) / f64::from(trials);
        Json::object([
            ("width", w.to_json()),
            ("trials", trials.to_json()),
            ("gray_w1", frac(counts[0]).to_json()),
            ("struct_k1", frac(counts[1]).to_json()),
            ("struct_k_half", frac(counts[2]).to_json()),
        ])
    });
    let mut t = Table::new(&["n", "p(link fail)", "gray (w=1)", "struct k=1", "struct k=⌈w/2⌉"]);
    for rec in &out.records {
        t.row(vec![
            fetch(&rec.params, "n").to_string(),
            format!("{}", fetch_f(&rec.params, "p")),
            format!("{:.3}", fetch_f(&rec.result, "gray_w1")),
            format!("{:.3}", fetch_f(&rec.result, "struct_k1")),
            format!("{:.3}", fetch_f(&rec.result, "struct_k_half")),
        ]);
    }
    (t, out)
}

// ---------------------------------------------------------------------------
// E19 — multi-tenant saturation on the shared implicit host.
// ---------------------------------------------------------------------------

/// One E19 grid point: how many tenants share the host.
#[derive(Debug, Clone, Copy)]
pub struct TenantPoint {
    /// Concurrent tenants.
    pub tenants: u32,
}

impl ToJson for TenantPoint {
    fn to_json(&self) -> Json {
        Json::object([("tenants", self.tenants.to_json())])
    }
}

/// The default E19 grid.
pub fn e19_grid(counts: &[u32]) -> Vec<TenantPoint> {
    counts.iter().map(|&tenants| TenantPoint { tenants }).collect()
}

/// E19 host dimension: `Q_20` (1M nodes), shared implicitly.
pub const E19_HOST_DIMS: u32 = 20;
/// E19 tenant subcube dimension: every guest plan lives in a `Q_8` window.
pub const E19_TENANT_DIMS: u32 = 8;
/// E19 per-link width capacity.
pub const E19_CAPACITY: u32 = 2;

/// The E19 tenant roster for a given count: tenant `i` gets window
/// `i % 4` (so counts above 4 deliberately pile tenants into shared
/// windows and drive the ledger toward saturation) and a guest kind
/// cycling through all four implicit plans — Theorem 1 cycle, Theorem 2
/// load-2 cycle, Gray-coded grid, binomial spanning tree.
pub fn e19_specs(count: u32) -> Vec<TenantSpec> {
    let m = E19_TENANT_DIMS;
    let t1: Arc<dyn TenantPlan> = Arc::new(Theorem1Plan::new(m).expect("theorem 1 plan"));
    let t2: Arc<dyn TenantPlan> = Arc::new(Theorem2Plan::new(m, false).expect("theorem 2 plan"));
    let grid: Arc<dyn TenantPlan> =
        Arc::new(GridPlan::new(m, m / 2, m / 2, m / 2).expect("grid plan"));
    let tree: Arc<dyn TenantPlan> = Arc::new(BinomialTreePlan::new(m, m / 2).expect("tree plan"));
    (0..count)
        .map(|i| {
            let (kind, plan) = match i % 4 {
                0 => ("t1cycle", Arc::clone(&t1)),
                1 => ("t2cycle", Arc::clone(&t2)),
                2 => ("grid", Arc::clone(&grid)),
                _ => ("tree", Arc::clone(&tree)),
            };
            TenantSpec { id: i, name: format!("{kind}-{i}"), window: u64::from(i % 4), plan }
        })
        .collect()
}

/// E19: sweeps the tenant count to saturation on a shared implicit `Q_20`
/// host. Each point runs the full multi-tenant engine — ledger admission
/// at capacity [`E19_CAPACITY`], congestion-aware path-subset selection
/// down to the IDA threshold, batched phases executed exactly on the
/// packet engine per `Q_8` window group — and reports aggregate
/// throughput, Jain's fairness index, and the measured max cumulative
/// link congestion against the averaging lower bound of
/// `hyperpath_core::bounds::congestion_lower_bound`, with the gap as its
/// own column.
///
/// Each point's engine seed is drawn from the point's own ChaCha stream
/// and the engine itself is sequential and keyed by tenant id, so the
/// artifact is byte-identical at any worker count (CI's `tenants-smoke`
/// job compares two runs).
///
/// The fail-stop fast path deliberately does **not** apply here: E19's
/// load-bearing columns (steps, throughput, congestion) are machine
/// telemetry — exactly what the outcome projection drops — so every
/// admitted phase genuinely runs on the engine (see DESIGN.md §6.15 on
/// fast-path eligibility).
pub fn e19_saturation(counts: &[u32], master_seed: u64) -> (Table, SweepOutput) {
    e19_saturation_with_threads(counts, master_seed, None)
}

/// [`e19_saturation`] with a pinned worker count (for the byte-identity
/// tests).
pub fn e19_saturation_with_threads(
    counts: &[u32],
    master_seed: u64,
    threads: Option<usize>,
) -> (Table, SweepOutput) {
    use rand::RngExt;

    let mut sweep = Sweep::new("e19_saturation", master_seed);
    if let Some(t) = threads {
        sweep = sweep.threads(t);
    }
    let out = sweep.run(e19_grid(counts), |pt, rng| {
        let cfg = TenantsConfig {
            host_dims: E19_HOST_DIMS,
            capacity: E19_CAPACITY,
            rounds: 4,
            requests_per_round: 12,
            max_requeues: 2,
            seed: rng.random(),
            exec: ExecMode::Packet,
        };
        let report = run_tenants(&cfg, &e19_specs(pt.tenants)).expect("e19 config is valid");
        let sum =
            |f: fn(&FlowStats) -> u64| -> u64 { report.tenants.iter().map(|t| f(&t.stats)).sum() };
        Json::object([
            ("requested", sum(|s| s.requested).to_json()),
            ("full", sum(|s| s.full).to_json()),
            ("degraded", sum(|s| s.degraded).to_json()),
            ("lost", sum(|s| s.lost).to_json()),
            ("delivered", report.delivered_messages().to_json()),
            ("steps", report.total_steps.to_json()),
            ("throughput", report.aggregate_throughput().to_json()),
            ("jain", report.jain_fairness().to_json()),
            ("congestion", report.measured_congestion().to_json()),
            ("bound", report.congestion_bound().to_json()),
            ("gap", report.congestion_gap().to_json()),
            ("links_touched", (report.ledger.links_touched as u64).to_json()),
        ])
    });
    let mut t = Table::new(&[
        "tenants",
        "requested",
        "full",
        "degraded",
        "lost",
        "tput",
        "jain",
        "cong",
        "bound",
        "gap",
    ]);
    for rec in &out.records {
        t.row(vec![
            fetch(&rec.params, "tenants").to_string(),
            fetch(&rec.result, "requested").to_string(),
            fetch(&rec.result, "full").to_string(),
            fetch(&rec.result, "degraded").to_string(),
            fetch(&rec.result, "lost").to_string(),
            format!("{:.4}", fetch_f(&rec.result, "throughput")),
            format!("{:.4}", fetch_f(&rec.result, "jain")),
            fetch(&rec.result, "congestion").to_string(),
            fetch(&rec.result, "bound").to_string(),
            fetch(&rec.result, "gap").to_string(),
        ]);
    }
    (t, out)
}

/// The E12 preamble demo: runs (5,3)-IDA end to end and returns the line
/// the binary prints. Panics if reconstruction fails.
pub fn ida_sanity_line() -> String {
    let ida = Ida::new(5, 3);
    let msg = b"multiple paths tolerate faults";
    let shares = ida.disperse(msg);
    let rec = ida.reconstruct(&shares[2..]).expect("any k shares reconstruct");
    assert_eq!(rec, msg);
    format!(
        "IDA(5,3) sanity: {} bytes -> 5 shares x {} bytes; reconstructed from shares 2..5: ok",
        msg.len(),
        shares[0].data.len()
    )
}

// ---------------------------------------------------------------------------
// E16 — oracle-free adaptive delivery vs the omniscient oracle.
// ---------------------------------------------------------------------------

/// One E16 grid point: host dimension and adversary regime.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePoint {
    /// Hypercube dimension.
    pub n: u32,
    /// `true` → static fail-stop plans (cuts only); `false` → the full
    /// dynamic adversary (outages, bursts, node storms, corruption).
    pub static_plans: bool,
}

impl ToJson for AdaptivePoint {
    fn to_json(&self) -> Json {
        Json::object([("n", self.n.to_json()), ("static_plans", self.static_plans.to_json())])
    }
}

/// The default E16 grid: both adversary regimes per dimension.
pub fn e16_grid(ns: &[u32]) -> Vec<AdaptivePoint> {
    ns.iter().flat_map(|&n| [true, false].map(|s| AdaptivePoint { n, static_plans: s })).collect()
}

/// E16: the oracle-free adaptive protocol
/// ([`deliver_adaptive`](hyperpath_sim::protocol::deliver_adaptive),
/// dispersal hoisted into an [`AdaptiveSetup`]) against the omniscient
/// oracle pipeline
/// ([`deliver_phase_plan`](hyperpath_sim::delivery::deliver_phase_plan),
/// hoisted likewise into a [`PhaseSetup`]), both run
/// against the *same* randomized [`FaultPlan`](hyperpath_sim::FaultPlan)
/// draw per trial.
///
/// The oracle's retry planner reads the fault plan's hazard set directly;
/// the adaptive sender sees only per-round ACK/NACK feedback on keyed
/// tagged shares. Against a **static fail-stop** adversary the oracle's
/// knowledge buys nothing — `equal_outcomes` must be 1.0, pinned by
/// `tests/adaptive_conformance.rs`. Against the **dynamic** adversary the
/// two legitimately diverge (the oracle writes off briefly-down links
/// permanently; the adaptive sender re-probes them).
///
/// The oracle side goes through
/// [`deliver_phase_plan_outcome`]: on the static fail-stop regime (half
/// the grid) every plan is detected as static and the oracle grade is
/// evaluated in closed form from path survival, skipping the packet
/// engine; the dynamic regime falls back to the engine. The adaptive
/// sender always runs the machine — it is the thing being measured.
pub fn e16_adaptive(ns: &[u32], trials: u32, master_seed: u64) -> (Table, SweepOutput) {
    e16_adaptive_with_threads(ns, trials, master_seed, None)
}

/// [`e16_adaptive`] with a pinned worker count (the determinism tests run
/// the same sweep on 1 and 4 workers and require byte-identical JSON).
pub fn e16_adaptive_with_threads(
    ns: &[u32],
    trials: u32,
    master_seed: u64,
    threads: Option<usize>,
) -> (Table, SweepOutput) {
    use rand::{RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use rayon::prelude::*;

    let mut sweep = Sweep::new("e16_adaptive", master_seed);
    if let Some(t) = threads {
        sweep = sweep.threads(t);
    }
    let out = sweep.run(e16_grid(ns), move |p, rng| {
        let t1 = theorem1(p.n).expect("theorem 1");
        let e = &t1.embedding;
        let k_half = t1.claimed_width.div_ceil(2);
        let dcfg = DeliveryConfig { threshold: k_half, max_retries: 2, message_len: 32 };
        // Hoisted out of the trial loop: both pipelines' dispersal work is
        // fault- and key-independent.
        let oracle_setup = PhaseSetup::new(e, &dcfg);
        let adaptive_setup = AdaptiveSetup::new(e, &dcfg);
        // One seed per trial drawn serially from the point's stream (the
        // byte-stability across worker counts rests on this).
        let seeds: Vec<u64> = (0..trials).map(|_| rng.random()).collect();
        let per_trial: Vec<[u64; 6]> = seeds
            .par_iter()
            .map(|&seed| {
                let mut trial_rng = ChaCha8Rng::seed_from_u64(seed);
                let plan = random_plan(&e.host, p.static_plans, &mut trial_rng);
                let key: u64 = trial_rng.random();
                let oracle = deliver_phase_plan_outcome(&oracle_setup, &plan);
                let adaptive = deliver_adaptive_prepared(
                    &adaptive_setup,
                    key,
                    &mut PlanNetwork::new(e, &plan),
                );
                [
                    u64::from(oracle.all_delivered()),
                    u64::from(adaptive.all_delivered()),
                    u64::from(
                        (adaptive.delivered, adaptive.degraded, adaptive.lost)
                            == (oracle.delivered, oracle.degraded, oracle.lost),
                    ),
                    adaptive.rejected_shares,
                    adaptive.shares_resent,
                    adaptive.wrong_reconstructions,
                ]
            })
            .collect();
        let totals = per_trial.iter().fold([0u64; 6], |mut acc, t| {
            for (a, &v) in acc.iter_mut().zip(t) {
                *a += v;
            }
            acc
        });
        let frac = |ok: u64| ok as f64 / f64::from(trials);
        Json::object([
            ("trials", trials.to_json()),
            ("oracle_ok", frac(totals[0]).to_json()),
            ("adaptive_ok", frac(totals[1]).to_json()),
            ("equal_outcomes", frac(totals[2]).to_json()),
            ("rejected_shares", totals[3].to_json()),
            ("shares_resent", totals[4].to_json()),
            ("wrong_reconstructions", totals[5].to_json()),
        ])
    });
    let mut t = Table::new(&[
        "n",
        "adversary",
        "oracle ok",
        "adaptive ok",
        "equal outcomes",
        "rejected",
        "wrong bytes",
    ]);
    for rec in &out.records {
        let is_static =
            rec.params.get("static_plans").and_then(Json::as_bool).expect("record field");
        t.row(vec![
            fetch(&rec.params, "n").to_string(),
            if is_static { "static fail-stop" } else { "dynamic" }.to_string(),
            format!("{:.3}", fetch_f(&rec.result, "oracle_ok")),
            format!("{:.3}", fetch_f(&rec.result, "adaptive_ok")),
            format!("{:.3}", fetch_f(&rec.result, "equal_outcomes")),
            fetch(&rec.result, "rejected_shares").to_string(),
            fetch(&rec.result, "wrong_reconstructions").to_string(),
        ]);
    }
    (t, out)
}

// ---------------------------------------------------------------------------
// E2 / E7 — deterministic construction tables (golden-tested).
// ---------------------------------------------------------------------------

/// E2: the Theorem 1 summary table over the given dimensions.
pub fn theorem1_table(ns: impl IntoIterator<Item = u32>) -> Table {
    let mut t = Table::new(&[
        "n",
        "claimed width",
        "packets",
        "certified cost",
        "natural?",
        "load",
        "dilation",
        "valid",
    ]);
    for n in ns {
        let r = theorem1(n).expect("construction");
        let ok = validate_multi_path(&r.embedding, r.claimed_width, Some(1)).is_ok();
        let m = multi_path_metrics(&r.embedding);
        t.row(vec![
            n.to_string(),
            r.claimed_width.to_string(),
            r.packets.to_string(),
            r.cost.to_string(),
            if r.natural_schedule_ok { "yes".into() } else { "no (aligned)".into() },
            m.load.to_string(),
            m.dilation.to_string(),
            ok.to_string(),
        ]);
    }
    t
}

/// E7: the Theorem 3 CCC-copies table (all three window strategies; for
/// `n ≥ 16` only the Theorem 3 strategy, to keep the big ablations short).
pub fn ccc_copies_table(ns: &[u32]) -> Table {
    let mut t =
        Table::new(&["n", "strategy", "copies", "dilation", "edge congestion", "n/r", "valid"]);
    for &n in ns {
        let r = n.trailing_zeros();
        for (strat, name) in [
            (WindowStrategy::Overlapping, "overlapping (Thm 3)"),
            (WindowStrategy::SameForAll, "same windows"),
            (WindowStrategy::Disjoint, "disjoint windows"),
        ] {
            if n >= 16 && strat != WindowStrategy::Overlapping {
                continue;
            }
            let c = ccc_multi_copy_with(n, strat).expect("construction");
            let ok = validate_multi_copy(&c.multi_copy).is_ok();
            let m = multi_copy_metrics(&c.multi_copy);
            t.row(vec![
                n.to_string(),
                name.into(),
                c.multi_copy.num_copies().to_string(),
                m.dilation.to_string(),
                m.edge_congestion.to_string(),
                (n / r).to_string(),
                ok.to_string(),
            ]);
        }
    }
    t
}

/// E7, second table: the Section 5.4 butterfly-copy transfer.
pub fn butterfly_copies_table(ns: &[u32]) -> Table {
    let mut t = Table::new(&["n", "copies", "dilation", "edge congestion"]);
    for &n in ns {
        let mc = butterfly_multi_copy(n).expect("construction");
        let m = multi_copy_metrics(&mc);
        t.row(vec![
            n.to_string(),
            mc.num_copies().to_string(),
            m.dilation.to_string(),
            m.edge_congestion.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E21 — chaos-hardened multi-tenant service under random fault plans.
// ---------------------------------------------------------------------------

/// One E21 grid point: link-cut probability × tenants sharing the host.
#[derive(Debug, Clone, Copy)]
pub struct ChaosTenantPoint {
    /// Probability each undirected host link is permanently cut.
    pub fault_rate: f64,
    /// Concurrent tenants.
    pub tenants: u32,
}

impl ToJson for ChaosTenantPoint {
    fn to_json(&self) -> Json {
        Json::object([("p", self.fault_rate.to_json()), ("tenants", self.tenants.to_json())])
    }
}

/// The default E21 grid: fault rates × tenant counts, row-major.
pub fn e21_grid(rates: &[f64], counts: &[u32]) -> Vec<ChaosTenantPoint> {
    rates
        .iter()
        .flat_map(|&fault_rate| {
            counts.iter().map(move |&tenants| ChaosTenantPoint { fault_rate, tenants })
        })
        .collect()
}

/// E21 host dimension: `Q_10` (1024 nodes, 5120 undirected links — big
/// enough for meaningful fault rates, small enough that every grid point
/// draws its plan by sweeping the links).
pub const E21_HOST_DIMS: u32 = 10;
/// E21 tenant subcube dimension: every guest lives in a `Q_4` window.
pub const E21_TENANT_DIMS: u32 = 4;
/// E21 per-link width capacity (same contention regime as E19).
pub const E21_CAPACITY: u32 = 2;

/// The E21 roster: grid and binomial-tree guests alternating, tenant `i`
/// at window `i % 4` so counts above 4 contend inside shared windows.
pub fn e21_specs(count: u32) -> Vec<TenantSpec> {
    let m = E21_TENANT_DIMS;
    let grid: Arc<dyn TenantPlan> =
        Arc::new(GridPlan::new(m, m / 2, m / 2, m - 1).expect("e21 grid plan"));
    let tree: Arc<dyn TenantPlan> =
        Arc::new(BinomialTreePlan::new(m, m - 1).expect("e21 tree plan"));
    (0..count)
        .map(|i| {
            let (kind, plan) = if i.is_multiple_of(2) {
                ("grid", Arc::clone(&grid))
            } else {
                ("tree", Arc::clone(&tree))
            };
            TenantSpec { id: i, name: format!("{kind}-{i}"), window: u64::from(i % 4), plan }
        })
        .collect()
}

/// Draws a static fail-stop [`TenantFaultPlan`] cutting each undirected
/// host link independently with probability `p`.
fn e21_plan(host_dims: u32, p: f64, rng: &mut rand_chacha::ChaCha8Rng) -> TenantFaultPlan {
    use rand::RngExt;
    let n = u64::from(host_dims);
    let mut plan = TenantFaultPlan::none();
    for base in 0..(1u64 << host_dims) {
        for d in 0..host_dims {
            if (base >> d) & 1 == 0 && rng.random_bool(p) {
                plan.cut_link(base * n + u64::from(d));
            }
        }
    }
    plan
}

/// E21: the robustness sweep — random link-cut plans at rate `p` against
/// `tenants` concurrent guests, run through the fault-aware engine with
/// ledger-learned quarantine ([`FaultRouting::Learned`]). Columns report
/// delivery, the retry-with-backoff queue's recoveries (with mean
/// rounds-to-recover), losses, throughput, Jain fairness, and how many
/// links the ledger quarantined. Delivery degrades monotonically down
/// the fault-rate axis while recovery and quarantine climb — the
/// measured shape of the paper's fault-tolerance claim under multi-
/// tenancy.
///
/// Deterministic: each grid point draws its plan and engine seed from
/// its own ChaCha stream, so the artifact is byte-identical at any
/// worker count (CI's `chaos-tenants` job compares two runs).
pub fn e21_chaos_tenants(rates: &[f64], counts: &[u32], master_seed: u64) -> (Table, SweepOutput) {
    e21_chaos_tenants_with_threads(rates, counts, master_seed, None)
}

/// [`e21_chaos_tenants`] with a pinned worker count (for the
/// byte-identity tests).
pub fn e21_chaos_tenants_with_threads(
    rates: &[f64],
    counts: &[u32],
    master_seed: u64,
    threads: Option<usize>,
) -> (Table, SweepOutput) {
    use rand::RngExt;

    let mut sweep = Sweep::new("e21_chaos_tenants", master_seed);
    if let Some(t) = threads {
        sweep = sweep.threads(t);
    }
    let out = sweep.run(e21_grid(rates, counts), |pt, rng| {
        let plan = e21_plan(E21_HOST_DIMS, pt.fault_rate, rng);
        let cfg = TenantsConfig {
            host_dims: E21_HOST_DIMS,
            capacity: E21_CAPACITY,
            rounds: 6,
            requests_per_round: 6,
            max_requeues: 3,
            seed: rng.random(),
            exec: ExecMode::Packet,
        };
        let report =
            run_tenants_planned(&cfg, &e21_specs(pt.tenants), &plan, FaultRouting::Learned)
                .expect("e21 config is valid");
        let sum =
            |f: fn(&FlowStats) -> u64| -> u64 { report.tenants.iter().map(|t| f(&t.stats)).sum() };
        let recovered = sum(|s| s.recovered);
        let recovery_rounds = sum(|s| s.recovery_rounds);
        let mean_recover =
            if recovered == 0 { 0.0 } else { recovery_rounds as f64 / recovered as f64 };
        Json::object([
            ("cuts", (plan.cut_count() as u64).to_json()),
            ("requested", sum(|s| s.requested).to_json()),
            ("full", sum(|s| s.full).to_json()),
            ("degraded", sum(|s| s.degraded).to_json()),
            ("delivered", report.delivered_messages().to_json()),
            ("recovered", recovered.to_json()),
            ("lost", sum(|s| s.lost).to_json()),
            ("requeues", sum(|s| s.requeues).to_json()),
            ("shares_lost", sum(|s| s.shares_lost).to_json()),
            ("steps", report.total_steps.to_json()),
            ("throughput", report.aggregate_throughput().to_json()),
            ("jain", report.jain_fairness().to_json()),
            ("mean_rounds_to_recover", mean_recover.to_json()),
            ("quarantined", (report.ledger.quarantined_links as u64).to_json()),
        ])
    });
    let mut t = Table::new(&[
        "p",
        "tenants",
        "cuts",
        "requested",
        "delivered",
        "recovered",
        "lost",
        "tput",
        "jain",
        "recover",
        "quar",
    ]);
    for rec in &out.records {
        t.row(vec![
            format!("{}", fetch_f(&rec.params, "p")),
            fetch(&rec.params, "tenants").to_string(),
            fetch(&rec.result, "cuts").to_string(),
            fetch(&rec.result, "requested").to_string(),
            fetch(&rec.result, "delivered").to_string(),
            fetch(&rec.result, "recovered").to_string(),
            fetch(&rec.result, "lost").to_string(),
            format!("{:.4}", fetch_f(&rec.result, "throughput")),
            format!("{:.4}", fetch_f(&rec.result, "jain")),
            format!("{:.2}", fetch_f(&rec.result, "mean_rounds_to_recover")),
            fetch(&rec.result, "quarantined").to_string(),
        ]);
    }
    (t, out)
}

// ---------------------------------------------------------------------------
// E22 — thread scaling of the group-parallel tenant engine.
// ---------------------------------------------------------------------------

/// E22 host dimension: `Q_16` — the four occupied `Q_8` windows give the
/// pooled engine four disjoint group phases to fan out per round.
pub const E22_HOST_DIMS: u32 = 16;
/// E22 tenant count: [`e19_specs`] windows cycle mod 4, so 8 tenants put
/// two guests in every window.
pub const E22_TENANTS: u32 = 8;
/// The default E22 thread axis.
pub const E22_THREADS: [usize; 4] = [1, 2, 4, 8];

/// E22: wall-clock scaling of the pooled tenant engine's round-parallel
/// group phases. One fixed workload — [`E22_TENANTS`] guests from the
/// [`e19_specs`] roster across the four `Q_8` windows of a `Q_16` host —
/// runs to completion under a pinned worker pool per requested thread
/// count. Columns report the median wall time, the speedup over the
/// dedicated single-thread baseline, and the load-bearing determinism
/// claim: every report is byte-identical to the serial one (`identical`
/// column — also asserted, so the binary aborts rather than print
/// timings that describe divergent runs).
///
/// Wall times and speedups are machine telemetry, so the E22 artifact is
/// for plots, not CI byte-comparison — the `tenants-scaling` job pins the
/// identity claim through the e19/e21 artifacts instead.
pub fn e22_thread_scaling(thread_counts: &[usize], master_seed: u64) -> (Table, SweepOutput) {
    use rand::{RngExt, SeedableRng};

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(master_seed);
    // Heavy phases on purpose: the worker fan-out costs a scoped spawn
    // per round, so each group's machine phase must carry enough
    // simulated traffic to dominate both the spawn and the (serial)
    // admission stage — a light workload here would measure overhead,
    // not the engine. 64-flit worms put the weight in the phases.
    let cfg = TenantsConfig {
        host_dims: E22_HOST_DIMS,
        capacity: 4,
        rounds: 6,
        requests_per_round: 96,
        max_requeues: 2,
        seed: rng.random(),
        exec: ExecMode::Wormhole { flits: 64 },
    };
    let engine = TenantEngine::new(cfg, &e19_specs(E22_TENANTS)).expect("e22 config is valid");
    let groups = engine.num_groups() as u64;

    let time_in = |threads: usize| -> (EngineReport, u64) {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool");
        let report = pool.install(|| engine.run());
        let wall_ns = crate::measure::median_wall_ns(1, 3, || pool.install(|| engine.run()));
        (report, wall_ns)
    };
    let (serial_report, serial_ns) = time_in(1);

    let mut records = Vec::new();
    for (index, &threads) in thread_counts.iter().enumerate() {
        let (report, wall_ns) = time_in(threads);
        let identical = report == serial_report;
        assert!(identical, "e22: report at {threads} threads diverged from the serial run");
        let speedup = serial_ns as f64 / wall_ns.max(1) as f64;
        records.push(crate::sweep::SweepRecord {
            index,
            params: Json::object([("threads", (threads as u64).to_json())]),
            result: Json::object([
                ("groups", groups.to_json()),
                ("wall_ns", wall_ns.to_json()),
                ("speedup", speedup.to_json()),
                ("identical", u64::from(identical).to_json()),
                ("delivered", report.delivered_messages().to_json()),
                ("steps", report.total_steps.to_json()),
            ]),
        });
    }
    let out = SweepOutput { experiment: "e22_thread_scaling".to_string(), master_seed, records };

    let mut t = Table::new(&["threads", "groups", "wall ms", "speedup", "identical"]);
    for rec in &out.records {
        t.row(vec![
            fetch(&rec.params, "threads").to_string(),
            fetch(&rec.result, "groups").to_string(),
            format!("{:.3}", fetch(&rec.result, "wall_ns") as f64 / 1e6),
            format!("{:.2}x", fetch_f(&rec.result, "speedup")),
            if fetch(&rec.result, "identical") == 1 { "yes" } else { "NO" }.to_string(),
        ]);
    }
    (t, out)
}

// ---------------------------------------------------------------------------
// Shared CLI plumbing for the `e*` binaries.
// ---------------------------------------------------------------------------

/// Options common to the experiment binaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CliOpts {
    /// `--json [PATH]`: write the sweep artifact (to PATH, or the default
    /// `BENCH_<EXPERIMENT>.json` when no path follows the flag).
    pub json: Option<Option<std::path::PathBuf>>,
    /// `--trials N` (Monte-Carlo / chaos binaries): trials per grid point.
    pub trials: Option<u32>,
    /// `--dims N[,N...]` (dimension-sweep binaries): dimensions to sweep.
    pub dims: Option<Vec<u32>>,
    /// `--seed N` (seed-pinned harnesses): master seed override.
    pub seed: Option<u64>,
    /// `--tenants` (`chaos_soak` only): run the multi-tenant chaos mode.
    pub tenants: bool,
    /// `--threads N` (tenant sweep binaries): worker-thread count for the
    /// round-parallel group phases. Output is byte-identical at any value.
    pub threads: Option<usize>,
}

/// Which optional flags a binary accepts. Flags a binary does not accept
/// are *rejected* at parse time (exit 2 with usage) rather than silently
/// ignored — every binary routes through [`try_parse_cli_for`] so a typo
/// can never panic deep inside a sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CliAccepts {
    /// `--trials N`.
    pub trials: bool,
    /// `--dims N[,N...]`.
    pub dims: bool,
    /// `--seed N`.
    pub seed: bool,
    /// `--tenants`.
    pub tenants: bool,
    /// `--threads N`.
    pub threads: bool,
}

/// The usage line for an experiment binary.
pub fn cli_usage(accepts_trials: bool) -> String {
    cli_usage_with(accepts_trials, false)
}

/// The usage line for an experiment binary, including `--dims` when the
/// binary sweeps a selectable dimension list.
pub fn cli_usage_with(accepts_trials: bool, accepts_dims: bool) -> String {
    cli_usage_for(CliAccepts {
        trials: accepts_trials,
        dims: accepts_dims,
        ..CliAccepts::default()
    })
}

/// The usage line for a binary accepting exactly the flags in `accepts`.
pub fn cli_usage_for(accepts: CliAccepts) -> String {
    let mut usage = String::from("usage: <experiment> [--json [PATH]]");
    if accepts.trials {
        usage.push_str(" [--trials N]");
    }
    if accepts.dims {
        usage.push_str(" [--dims N[,N...]]");
    }
    if accepts.seed {
        usage.push_str(" [--seed N]");
    }
    if accepts.tenants {
        usage.push_str(" [--tenants]");
    }
    if accepts.threads {
        usage.push_str(" [--threads N]");
    }
    usage
}

/// Parses an experiment-binary command line. `accepts_trials` is true only
/// for the Monte-Carlo binaries (E12/E18); everywhere else `--trials`
/// would silently do nothing, so it is rejected.
pub fn try_parse_cli(
    args: impl IntoIterator<Item = String>,
    accepts_trials: bool,
) -> Result<CliOpts, String> {
    try_parse_cli_with(args, accepts_trials, false)
}

/// [`try_parse_cli`] plus (when `accepts_dims`) the `--dims N[,N...]`
/// dimension-list flag used by the fault-sweep binaries.
pub fn try_parse_cli_with(
    args: impl IntoIterator<Item = String>,
    accepts_trials: bool,
    accepts_dims: bool,
) -> Result<CliOpts, String> {
    try_parse_cli_for(
        args,
        CliAccepts { trials: accepts_trials, dims: accepts_dims, ..CliAccepts::default() },
    )
}

/// The one real parser behind every experiment binary: accepts exactly
/// the flags named by `accepts` and rejects everything else with a
/// message (the `parse_cli*` wrappers turn that into exit 2 + usage).
pub fn try_parse_cli_for(
    args: impl IntoIterator<Item = String>,
    accepts: CliAccepts,
) -> Result<CliOpts, String> {
    let mut opts = CliOpts::default();
    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                let path = match it.peek() {
                    Some(p) if !p.starts_with("--") => {
                        Some(std::path::PathBuf::from(it.next().unwrap()))
                    }
                    _ => None,
                };
                opts.json = Some(path);
            }
            "--trials" if accepts.trials => {
                let n = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &u32| n > 0)
                    .ok_or_else(|| "--trials requires a positive integer".to_string())?;
                opts.trials = Some(n);
            }
            "--trials" => {
                return Err(
                    "--trials is only meaningful for the Monte-Carlo experiments (e12)".to_string()
                )
            }
            "--dims" if accepts.dims => {
                let list = it
                    .next()
                    .ok_or_else(|| "--dims requires a comma-separated list".to_string())?;
                let dims = list
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| {
                        let n = s
                            .trim()
                            .parse::<u32>()
                            .map_err(|_| format!("bad dimension {s:?} in --dims"))?;
                        if n == 0 {
                            return Err(format!("bad dimension {s:?} in --dims (must be >= 1)"));
                        }
                        if n > hyperpath_topology::MAX_DIMS {
                            return Err(format!(
                                "dimension {n} in --dims exceeds MAX_DIMS={}",
                                hyperpath_topology::MAX_DIMS
                            ));
                        }
                        Ok(n)
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
                if dims.is_empty() {
                    return Err(format!("--dims list {list:?} names no dimensions"));
                }
                opts.dims = Some(dims);
            }
            "--dims" => {
                return Err("--dims is only meaningful for the fault-sweep experiments (e12, e18)"
                    .to_string())
            }
            "--seed" if accepts.seed => {
                let n = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| "--seed requires an unsigned integer".to_string())?;
                opts.seed = Some(n);
            }
            "--seed" => {
                return Err("--seed is only meaningful for the seed-pinned harnesses \
                            (chaos_soak, e19, e21)"
                    .to_string())
            }
            "--tenants" if accepts.tenants => opts.tenants = true,
            "--tenants" => {
                return Err("--tenants is only meaningful for chaos_soak".to_string());
            }
            "--threads" if accepts.threads => {
                let n = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--threads requires a positive integer".to_string())?;
                opts.threads = Some(n);
            }
            "--threads" => {
                return Err("--threads is only meaningful for the tenant sweep binaries \
                            (e19, e21, e22, chaos_soak)"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

/// Parses `std::env::args()` for an experiment binary; on bad usage prints
/// the error plus a usage line to stderr and exits with status 2.
pub fn parse_cli(accepts_trials: bool) -> CliOpts {
    parse_cli_with(accepts_trials, false)
}

/// [`parse_cli`] for binaries that also sweep a selectable dimension list.
pub fn parse_cli_with(accepts_trials: bool, accepts_dims: bool) -> CliOpts {
    parse_cli_for(CliAccepts {
        trials: accepts_trials,
        dims: accepts_dims,
        ..CliAccepts::default()
    })
}

/// [`parse_cli`] for a binary accepting exactly the flags in `accepts`.
pub fn parse_cli_for(accepts: CliAccepts) -> CliOpts {
    match try_parse_cli_for(std::env::args().skip(1), accepts) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", cli_usage_for(accepts));
            std::process::exit(2);
        }
    }
}

/// Re-shapes rendered [`Table`]s into a [`SweepOutput`] so the table-only
/// experiment binaries (E2-E9, E11, E13-E15) emit `BENCH_*.json` artifacts
/// through the same [`maybe_write_json`] path as the sweep-shaped ones.
/// Each table row becomes one record: params identify `{table, row}`, the
/// result maps column header → rendered cell.
pub fn tables_output(experiment: &str, tables: &[(&str, &Table)]) -> SweepOutput {
    let mut records = Vec::new();
    for (name, table) in tables {
        for (row_idx, row) in table.rows().iter().enumerate() {
            let index = records.len();
            records.push(crate::sweep::SweepRecord {
                index,
                params: Json::object([("table", (*name).to_json()), ("row", row_idx.to_json())]),
                result: Json::Object(
                    table
                        .header()
                        .iter()
                        .zip(row)
                        .map(|(h, c)| (h.clone(), c.as_str().to_json()))
                        .collect(),
                ),
            });
        }
    }
    SweepOutput { experiment: experiment.to_string(), master_seed: 0, records }
}

/// Writes the sweep artifact if `--json` was given; prints where it went.
pub fn maybe_write_json(out: &SweepOutput, opts: &CliOpts) {
    if let Some(path) = &opts.json {
        let path = match path {
            Some(p) => {
                out.write_to(p).expect("write JSON artifact");
                p.clone()
            }
            None => out.write_default().expect("write JSON artifact"),
        };
        println!("\nwrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parses_json_and_trials() {
        assert_eq!(try_parse_cli(Vec::new(), false), Ok(CliOpts::default()));
        let o = try_parse_cli(["--json".to_string()], false).unwrap();
        assert_eq!(o.json, Some(None));
        let o = try_parse_cli(["--json".to_string(), "out.json".to_string()], false).unwrap();
        assert_eq!(o.json, Some(Some("out.json".into())));
        let o =
            try_parse_cli(["--trials".to_string(), "50".to_string(), "--json".to_string()], true)
                .unwrap();
        assert_eq!(o.trials, Some(50));
        assert_eq!(o.json, Some(None));
    }

    #[test]
    fn cli_parses_dims_lists() {
        let o =
            try_parse_cli_with(["--dims".to_string(), "8,10,12".to_string()], true, true).unwrap();
        assert_eq!(o.dims, Some(vec![8, 10, 12]));
        let o = try_parse_cli_with(["--dims".to_string(), "20".to_string()], false, true).unwrap();
        assert_eq!(o.dims, Some(vec![20]));
        // Whitespace around commas is tolerated.
        let o =
            try_parse_cli_with(["--dims".to_string(), "4, 6".to_string()], false, true).unwrap();
        assert_eq!(o.dims, Some(vec![4, 6]));
        // The legacy entry points never accept --dims.
        assert_eq!(
            try_parse_cli(["--dims".to_string(), "8".to_string()], true).unwrap_err(),
            try_parse_cli_with(["--dims".to_string(), "8".to_string()], true, false).unwrap_err()
        );
    }

    #[test]
    fn cli_rejects_bad_usage_without_panicking() {
        assert!(try_parse_cli(["--frobnicate".to_string()], false).is_err());
        assert!(try_parse_cli(["--trials".to_string(), "0".to_string()], true).is_err());
        assert!(try_parse_cli(["--trials".to_string()], true).is_err());
        // --trials is meaningless outside the Monte-Carlo binaries.
        let e = try_parse_cli(["--trials".to_string(), "50".to_string()], false).unwrap_err();
        assert!(e.contains("only meaningful"), "{e}");
        // --dims is likewise rejected where it would silently do nothing.
        let e =
            try_parse_cli_with(["--dims".to_string(), "8".to_string()], true, false).unwrap_err();
        assert!(e.contains("only meaningful"), "{e}");
        // Malformed dimension lists.
        assert!(try_parse_cli_with(["--dims".to_string()], true, true).is_err());
        assert!(try_parse_cli_with(["--dims".to_string(), "".to_string()], true, true).is_err());
        assert!(try_parse_cli_with(["--dims".to_string(), "8,0".to_string()], true, true).is_err());
        assert!(try_parse_cli_with(["--dims".to_string(), "8,x".to_string()], true, true).is_err());
    }

    #[test]
    fn cli_rejects_out_of_range_and_empty_dims_lists() {
        // Regression: these used to parse and then panic (or OOM) deep in
        // the sweep — `Hypercube::new` asserts dims <= MAX_DIMS and dims
        // >= 1 long after the CLI handed the list over. They must be
        // caught at parse time so the binaries exit 2 with usage instead.
        let e =
            try_parse_cli_with(["--dims".to_string(), "0".to_string()], true, true).unwrap_err();
        assert!(e.contains("must be >= 1"), "{e}");
        let over = (hyperpath_topology::MAX_DIMS + 1).to_string();
        let e = try_parse_cli_with(["--dims".to_string(), over], true, true).unwrap_err();
        assert!(e.contains("exceeds MAX_DIMS"), "{e}");
        let e = try_parse_cli_with(["--dims".to_string(), "8,999".to_string()], true, true)
            .unwrap_err();
        assert!(e.contains("exceeds MAX_DIMS"), "{e}");
        // A separators-only list names nothing to sweep.
        let e =
            try_parse_cli_with(["--dims".to_string(), ",".to_string()], true, true).unwrap_err();
        assert!(e.contains("names no dimensions"), "{e}");
        let e =
            try_parse_cli_with(["--dims".to_string(), " , ,".to_string()], true, true).unwrap_err();
        assert!(e.contains("names no dimensions"), "{e}");
        // The boundary itself is fine, and stray separators are tolerated
        // as long as at least one dimension survives.
        let at = hyperpath_topology::MAX_DIMS.to_string();
        let o = try_parse_cli_with(["--dims".to_string(), at.clone()], true, true).unwrap();
        assert_eq!(o.dims, Some(vec![hyperpath_topology::MAX_DIMS]));
        let o = try_parse_cli_with(["--dims".to_string(), "8,".to_string()], true, true).unwrap();
        assert_eq!(o.dims, Some(vec![8]));
    }

    #[test]
    fn cli_parses_seed_and_tenants_where_accepted() {
        let all = CliAccepts { trials: true, dims: true, seed: true, tenants: true, threads: true };
        let o = try_parse_cli_for(["--seed".to_string(), "1990".to_string()], all).unwrap();
        assert_eq!(o.seed, Some(1990));
        assert!(!o.tenants);
        let o = try_parse_cli_for(["--tenants".to_string()], all).unwrap();
        assert!(o.tenants);
        let o = try_parse_cli_for(
            ["--tenants", "--seed", "7", "--trials", "3", "--dims", "6", "--json"]
                .map(String::from),
            all,
        )
        .unwrap();
        assert_eq!(
            (o.tenants, o.seed, o.trials, o.dims, o.json),
            (true, Some(7), Some(3), Some(vec![6]), Some(None))
        );
        // Usage lines advertise exactly the accepted flags.
        let u = cli_usage_for(all);
        for flag in ["--json", "--trials", "--dims", "--seed", "--tenants", "--threads"] {
            assert!(u.contains(flag), "{u} missing {flag}");
        }
        assert_eq!(cli_usage_for(CliAccepts::default()), "usage: <experiment> [--json [PATH]]");
    }

    #[test]
    fn cli_rejects_seed_and_tenants_where_not_accepted() {
        // The unified parser exits 2 with usage on these via parse_cli_for;
        // here we pin the error paths it reports.
        let e = try_parse_cli_for(["--seed".to_string(), "1".to_string()], CliAccepts::default())
            .unwrap_err();
        assert!(e.contains("only meaningful"), "{e}");
        let e = try_parse_cli_for(["--tenants".to_string()], CliAccepts::default()).unwrap_err();
        assert!(e.contains("only meaningful"), "{e}");
        let seedy = CliAccepts { seed: true, ..CliAccepts::default() };
        assert!(try_parse_cli_for(["--seed".to_string()], seedy).is_err());
        assert!(try_parse_cli_for(["--seed".to_string(), "x".to_string()], seedy).is_err());
        assert!(try_parse_cli_for(["--seed".to_string(), "-1".to_string()], seedy).is_err());
        // The legacy wrappers keep their exact behavior.
        assert_eq!(
            try_parse_cli_with(["--seed".to_string(), "1".to_string()], true, true).unwrap_err(),
            try_parse_cli_for(
                ["--seed".to_string(), "1".to_string()],
                CliAccepts { trials: true, dims: true, ..CliAccepts::default() }
            )
            .unwrap_err()
        );
    }

    #[test]
    fn cli_parses_threads_where_accepted_and_rejects_bad_values() {
        let threaded = CliAccepts { seed: true, threads: true, ..CliAccepts::default() };
        let o = try_parse_cli_for(["--threads".to_string(), "4".to_string()], threaded).unwrap();
        assert_eq!(o.threads, Some(4));
        let o = try_parse_cli_for(
            ["--seed", "1990", "--threads", "1", "--json"].map(String::from),
            threaded,
        )
        .unwrap();
        assert_eq!((o.seed, o.threads, o.json), (Some(1990), Some(1), Some(None)));
        // Zero, garbage, and a missing value are caught at parse time so
        // the binaries exit 2 with usage instead of installing a broken
        // pool deep inside a sweep.
        assert!(try_parse_cli_for(["--threads".to_string(), "0".to_string()], threaded).is_err());
        assert!(try_parse_cli_for(["--threads".to_string(), "x".to_string()], threaded).is_err());
        assert!(try_parse_cli_for(["--threads".to_string(), "-2".to_string()], threaded).is_err());
        assert!(try_parse_cli_for(["--threads".to_string()], threaded).is_err());
        // Rejected (not ignored) where the binary has no parallel phases.
        let e =
            try_parse_cli_for(["--threads".to_string(), "2".to_string()], CliAccepts::default())
                .unwrap_err();
        assert!(e.contains("only meaningful"), "{e}");
        // Usage advertises the flag exactly when accepted.
        assert!(cli_usage_for(threaded).contains("[--threads N]"));
        assert!(!cli_usage_for(CliAccepts::default()).contains("--threads"));
    }

    #[test]
    fn e21_sweep_is_deterministic_and_degrades_with_fault_rate() {
        let (_, a) = e21_chaos_tenants_with_threads(&[0.0, 0.05], &[2], 1990, Some(1));
        let (_, b) = e21_chaos_tenants_with_threads(&[0.0, 0.05], &[2], 1990, Some(3));
        assert_eq!(a.records, b.records, "E21 artifact must be byte-identical across threads");
        let delivered = |r: &crate::sweep::SweepRecord| fetch(&r.result, "delivered");
        assert!(delivered(&a.records[1]) <= delivered(&a.records[0]));
        assert_eq!(fetch(&a.records[0].result, "cuts"), 0);
        assert_eq!(fetch(&a.records[0].result, "quarantined"), 0);
        assert_eq!(
            fetch(&a.records[0].result, "delivered") + fetch(&a.records[0].result, "lost"),
            fetch(&a.records[0].result, "requested")
        );
    }

    #[test]
    fn e22_reports_identity_at_every_thread_count() {
        let (t, out) = e22_thread_scaling(&[1, 2], 1990);
        assert_eq!(out.records.len(), 2);
        for rec in &out.records {
            // The function asserts identity internally; the artifact must
            // also carry the claim so a rendered table can show it.
            assert_eq!(fetch(&rec.result, "identical"), 1);
            assert_eq!(fetch(&rec.result, "groups"), 4, "all four Q_8 windows occupied");
            assert!(fetch(&rec.result, "delivered") > 0);
        }
        // Traffic columns are thread-invariant (timings of course differ).
        assert_eq!(fetch(&out.records[0].result, "steps"), fetch(&out.records[1].result, "steps"));
        assert!(t.render().contains("yes"));
    }

    #[test]
    fn tables_flatten_to_sweep_records() {
        let mut a = Table::new(&["n", "cost"]);
        a.row(vec!["4".into(), "3".into()]);
        a.row(vec!["8".into(), "3".into()]);
        let mut b = Table::new(&["k"]);
        b.row(vec!["1".into()]);
        let out = tables_output("e2_theorem1", &[("main", &a), ("extra", &b)]);
        assert_eq!(out.experiment, "e2_theorem1");
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[0].params.get("table"), Some(&Json::Str("main".into())));
        assert_eq!(out.records[0].result.get("cost"), Some(&Json::Str("3".into())));
        assert_eq!(out.records[2].params.get("table"), Some(&Json::Str("extra".into())));
        assert_eq!(out.records[2].params.get("row").and_then(Json::as_u64), Some(0));
        assert_eq!(out.default_path().to_str(), Some("BENCH_E2_THEOREM1.json"));
    }

    #[test]
    fn e1_small_grid_matches_theory() {
        let (t, out) = e1_cycle_speedup(&[6]);
        assert_eq!(out.records.len(), 4);
        // Gray code realizes exactly m steps per phase.
        for rec in &out.records {
            let m = rec.params.get("m").and_then(Json::as_u64).unwrap();
            assert_eq!(rec.result.get("gray_steps").and_then(Json::as_u64), Some(m));
        }
        assert!(t.render().contains("gray steps"));
    }

    #[test]
    fn e12_probabilities_are_probabilities_and_ordered_by_construction() {
        let (_, out) = e12_faults(&[6], 20, 99);
        for rec in &out.records {
            for key in ["gray_w1", "struct_k1", "struct_k_half", "sim_no_retry", "sim_retry"] {
                let v = rec.result.get(key).and_then(Json::as_f64).unwrap();
                assert!((0.0..=1.0).contains(&v), "{key} = {v}");
            }
            // Shared fault draws make these identities exact, not just
            // statistical: a share arrives iff its path survives, and one
            // surviving path carries every retried share.
            let f = |key| rec.result.get(key).and_then(Json::as_f64).unwrap();
            assert_eq!(f("sim_no_retry"), f("struct_k_half"));
            assert_eq!(f("sim_retry"), f("struct_k1"));
            assert!(f("sim_retry") >= f("sim_no_retry"));
        }
    }
}
