//! Measurement core for the perf-regression harness: a counting global
//! allocator and warmup/median-of-k wall-clock timing.
//!
//! The harness separates two kinds of measurement:
//!
//! * **Deterministic counters** — allocation calls/bytes and the
//!   [`CountingRecorder`](hyperpath_sim::CountingRecorder) work counters
//!   (steps, packet-hops, queue pushes, flit moves). For a fixed workload
//!   these are pure functions of the code's behavior: identical on every
//!   machine, every thread count, every run. The bench gate compares them
//!   **exactly** — any drift is a semantic or allocation-profile change.
//! * **Wall-clock** — [`median_wall_ns`] medians over `k` timed reps after
//!   warmup. Machine-dependent by nature, so the gate only applies a
//!   tolerance band as a catastrophic-regression tripwire.
//!
//! [`CountingAlloc`] wraps the system allocator with two relaxed atomic
//! counters. It is installed as the `#[global_allocator]` by the
//! `perf_suite` / `bench_gate` binaries and the `alloc_zero` regression
//! test (each binary/test is its own program, so each installs its own),
//! or library-wide via the `counting-alloc` feature. Code that reads the
//! counters must first check [`counting_allocator_installed`] — without
//! the installation the counters simply never move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A `GlobalAlloc` that counts every allocation call and requested byte
/// before delegating to the system allocator. Deallocation is free (the
/// harness pins allocation work, not peak memory).
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counter
// updates have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[cfg(feature = "counting-alloc")]
#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

/// Allocation counters at one instant, or the difference of two instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocation calls (`alloc` + `alloc_zeroed` + `realloc`).
    pub calls: u64,
    /// Bytes requested across those calls.
    pub bytes: u64,
}

impl AllocStats {
    /// The process-lifetime counters right now.
    pub fn now() -> AllocStats {
        AllocStats {
            calls: ALLOC_CALLS.load(Ordering::Relaxed),
            bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        }
    }

    /// Counter movement since `earlier`.
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            calls: self.calls.wrapping_sub(earlier.calls),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// Whether [`CountingAlloc`] is this program's global allocator (probes
/// with a real allocation and checks the counter moved).
pub fn counting_allocator_installed() -> bool {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let probe: Vec<u8> = std::hint::black_box(Vec::with_capacity(1));
    drop(probe);
    ALLOC_CALLS.load(Ordering::Relaxed) != before
}

/// Runs `f` and returns its result plus the allocations it performed.
/// Meaningful only when [`counting_allocator_installed`] — otherwise the
/// stats are zero.
pub fn measure_allocs<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
    let before = AllocStats::now();
    let out = f();
    let after = AllocStats::now();
    (out, after.since(&before))
}

/// Times `f`: `warmup` unmeasured calls, then `reps` measured calls, and
/// returns the median elapsed nanoseconds (odd `reps` give a true median;
/// even give the lower of the two central reps).
///
/// # Panics
/// Panics if `reps` is zero.
pub fn median_wall_ns<R>(warmup: u32, reps: u32, mut f: impl FnMut() -> R) -> u64 {
    assert!(reps > 0, "median of zero reps");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[(samples.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_stats_subtract() {
        let a = AllocStats { calls: 10, bytes: 100 };
        let b = AllocStats { calls: 4, bytes: 40 };
        assert_eq!(a.since(&b), AllocStats { calls: 6, bytes: 60 });
    }

    #[test]
    fn measure_allocs_returns_closure_result() {
        let (v, stats) = measure_allocs(|| vec![1u8, 2, 3]);
        assert_eq!(v, vec![1, 2, 3]);
        // Without the global allocator installed the stats stay zero; with
        // it they count at least the Vec. Both are valid here — the strict
        // assertions live in tests/alloc_zero.rs where the allocator IS
        // installed.
        if counting_allocator_installed() {
            assert!(stats.calls >= 1);
            assert!(stats.bytes >= 3);
        } else {
            assert_eq!(stats, AllocStats::default());
        }
    }

    #[test]
    fn median_wall_ns_returns_a_sane_sample() {
        let ns = median_wall_ns(1, 5, || std::hint::black_box((0..1000u64).sum::<u64>()));
        assert!(ns > 0, "a real computation takes nonzero time");
        assert!(ns < 1_000_000_000, "and far less than a second");
    }

    #[test]
    #[should_panic]
    fn median_of_zero_reps_panics() {
        median_wall_ns(0, 0, || ());
    }
}
