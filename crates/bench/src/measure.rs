//! Measurement core for the perf-regression harness: a counting global
//! allocator and warmup/median-of-k wall-clock timing.
//!
//! The harness separates two kinds of measurement:
//!
//! * **Deterministic counters** — allocation calls/bytes and the
//!   [`CountingRecorder`](hyperpath_sim::CountingRecorder) work counters
//!   (steps, packet-hops, queue pushes, flit moves). For a fixed workload
//!   these are pure functions of the code's behavior: identical on every
//!   machine, every thread count, every run. The bench gate compares them
//!   **exactly** — any drift is a semantic or allocation-profile change.
//! * **Wall-clock** — [`median_wall_ns`] medians over `k` timed reps after
//!   warmup. Machine-dependent by nature, so the gate only applies a
//!   tolerance band as a catastrophic-regression tripwire.
//!
//! [`CountingAlloc`] wraps the system allocator with relaxed atomic
//! counters: cumulative calls/bytes always, plus a live-byte watermark
//! ([`measure_peak`]) that the memory-scaling gate pins. Watermark
//! bookkeeping is flag-gated and off outside [`measure_peak`] windows, so
//! the steady-state per-allocation cost (two relaxed `fetch_add`s and one
//! relaxed flag load) stays flat — the wall-clock speedup floors the gate
//! enforces are measured under this same allocator, and always-on
//! watermark updates were observed to compress kernel-vs-reference ratios
//! on small workloads. It is installed as the `#[global_allocator]` by the
//! `perf_suite` / `bench_gate` binaries and the `alloc_zero` regression
//! test (each binary/test is its own program, so each installs its own),
//! or library-wide via the `counting-alloc` feature. Code that reads the
//! counters must first check [`counting_allocator_installed`] — without
//! the installation the counters simply never move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
// Live-byte watermark state, active only inside a `measure_peak` window.
// `LIVE_DELTA` is live bytes relative to the window start — signed,
// because the closure may free memory that predates the window.
static PEAK_TRACKING: AtomicBool = AtomicBool::new(false);
static LIVE_DELTA: AtomicI64 = AtomicI64::new(0);
static PEAK_DELTA: AtomicI64 = AtomicI64::new(0);

#[inline]
fn live_add(size: u64) {
    if PEAK_TRACKING.load(Ordering::Relaxed) {
        let cur = LIVE_DELTA.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        PEAK_DELTA.fetch_max(cur, Ordering::Relaxed);
    }
}

#[inline]
fn live_sub(size: u64) {
    if PEAK_TRACKING.load(Ordering::Relaxed) {
        LIVE_DELTA.fetch_sub(size as i64, Ordering::Relaxed);
    }
}

/// A `GlobalAlloc` that counts every allocation call and requested byte
/// before delegating to the system allocator, and — inside a
/// [`measure_peak`] window — additionally tracks the live-byte watermark
/// (deallocation subtracts from the live count but never rewinds the
/// recorded peak).
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counter
// updates have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        live_add(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        live_add(layout.size() as u64);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        live_sub(layout.size() as u64);
        live_add(new_size as u64);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        live_sub(layout.size() as u64);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[cfg(feature = "counting-alloc")]
#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

/// Allocation counters at one instant, or the difference of two instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocation calls (`alloc` + `alloc_zeroed` + `realloc`).
    pub calls: u64,
    /// Bytes requested across those calls.
    pub bytes: u64,
}

impl AllocStats {
    /// The process-lifetime counters right now.
    pub fn now() -> AllocStats {
        AllocStats {
            calls: ALLOC_CALLS.load(Ordering::Relaxed),
            bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        }
    }

    /// Counter movement since `earlier`.
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            calls: self.calls.wrapping_sub(earlier.calls),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// Whether [`CountingAlloc`] is this program's global allocator (probes
/// with a real allocation and checks the counter moved).
pub fn counting_allocator_installed() -> bool {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let probe: Vec<u8> = std::hint::black_box(Vec::with_capacity(1));
    drop(probe);
    ALLOC_CALLS.load(Ordering::Relaxed) != before
}

/// Runs `f` and returns its result plus the allocations it performed.
/// Meaningful only when [`counting_allocator_installed`] — otherwise the
/// stats are zero.
pub fn measure_allocs<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
    let before = AllocStats::now();
    let out = f();
    let after = AllocStats::now();
    (out, after.since(&before))
}

/// Runs `f` and returns its result plus the peak number of bytes `f` held
/// live *above* what was already live when it started.
///
/// Watermark bookkeeping is enabled only for the duration of the call (so
/// the allocator's steady-state overhead — and with it the gate's
/// wall-clock speedup ratios — is unaffected by this feature existing).
/// Because the watermark is a single global, concurrent allocations from
/// other threads would bleed into the figure and nested calls would reset
/// the outer window — call this only from single-threaded, non-nested
/// measurement regions (the perf suite and the scale tests do).
/// Meaningful only when [`counting_allocator_installed`].
pub fn measure_peak<R>(f: impl FnOnce() -> R) -> (R, u64) {
    LIVE_DELTA.store(0, Ordering::Relaxed);
    PEAK_DELTA.store(0, Ordering::Relaxed);
    PEAK_TRACKING.store(true, Ordering::Relaxed);
    let out = f();
    PEAK_TRACKING.store(false, Ordering::Relaxed);
    let peak = PEAK_DELTA.load(Ordering::Relaxed);
    (out, u64::try_from(peak).unwrap_or(0))
}

/// Times `f`: `warmup` unmeasured calls, then `reps` measured calls, and
/// returns the median elapsed nanoseconds (odd `reps` give a true median;
/// even give the lower of the two central reps).
///
/// # Panics
/// Panics if `reps` is zero.
pub fn median_wall_ns<R>(warmup: u32, reps: u32, mut f: impl FnMut() -> R) -> u64 {
    assert!(reps > 0, "median of zero reps");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[(samples.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_stats_subtract() {
        let a = AllocStats { calls: 10, bytes: 100 };
        let b = AllocStats { calls: 4, bytes: 40 };
        assert_eq!(a.since(&b), AllocStats { calls: 6, bytes: 60 });
    }

    #[test]
    fn measure_allocs_returns_closure_result() {
        let (v, stats) = measure_allocs(|| vec![1u8, 2, 3]);
        assert_eq!(v, vec![1, 2, 3]);
        // Without the global allocator installed the stats stay zero; with
        // it they count at least the Vec. Both are valid here — the strict
        // assertions live in tests/alloc_zero.rs where the allocator IS
        // installed.
        if counting_allocator_installed() {
            assert!(stats.calls >= 1);
            assert!(stats.bytes >= 3);
        } else {
            assert_eq!(stats, AllocStats::default());
        }
    }

    #[test]
    fn measure_peak_tracks_transient_highs() {
        let (_, peak) = measure_peak(|| {
            let big = std::hint::black_box(vec![0u8; 1 << 16]);
            drop(big);
            std::hint::black_box(vec![0u8; 16])
        });
        if counting_allocator_installed() {
            // The transient 64 KiB shows up even though it was freed
            // before the closure returned.
            assert!(peak >= 1 << 16, "peak {peak} missed the transient");
        } else {
            assert_eq!(peak, 0);
        }
    }

    #[test]
    fn measure_peak_survives_frees_of_pre_window_memory() {
        // Freeing memory allocated before the window drives the live delta
        // negative; the reported peak must clamp at zero, not wrap.
        let pre = std::hint::black_box(vec![0u8; 1 << 12]);
        let (_, peak) = measure_peak(|| {
            drop(pre);
            std::hint::black_box(vec![0u8; 1 << 10])
        });
        assert!(peak < 1 << 12, "peak {peak} wrapped or counted pre-window bytes");
    }

    #[test]
    fn median_wall_ns_returns_a_sane_sample() {
        let ns = median_wall_ns(1, 5, || std::hint::black_box((0..1000u64).sum::<u64>()));
        assert!(ns > 0, "a real computation takes nonzero time");
        assert!(ns < 1_000_000_000, "and far less than a second");
    }

    #[test]
    #[should_panic]
    fn median_of_zero_reps_panics() {
        median_wall_ns(0, 0, || ());
    }
}
