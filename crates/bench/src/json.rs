//! Deterministic JSON encoding for benchmark artifacts.
//!
//! `BENCH_*.json` files must be byte-stable across runs, machines, and
//! thread counts, so this encoder is deliberately minimal and predictable:
//! object members keep insertion order (no hashing), floats render through
//! Rust's shortest-roundtrip formatting, and non-finite floats become
//! `null` (JSON has no NaN). The `serde` derives on the sweep types tag
//! them for downstream consumers; the bytes on disk come from here.

/// A JSON value. Objects preserve member insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (renders without decimal point).
    UInt(u64),
    /// Signed integer (renders without decimal point).
    Int(i64),
    /// Finite floats render shortest-roundtrip; non-finite render `null`.
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object as ordered members.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from ordered members.
    pub fn object(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64` (floats and integers both qualify).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (open_pad, close_pad, sep): (String, String, &str) = match indent {
            Some(w) => (
                format!("\n{}", " ".repeat(w * (depth + 1))),
                format!("\n{}", " ".repeat(w * depth)),
                ": ",
            ),
            None => (String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Shortest-roundtrip; force a decimal marker so the
                    // value reads back as a float.
                    let s = f.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&open_pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&open_pad);
                    write_escaped(out, k);
                    out.push_str(sep);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses a JSON document (the inverse of [`render`](Json::render) /
    /// [`render_pretty`](Json::render_pretty), used by the bench gate to
    /// read committed baselines). Numbers without `.`/exponent parse as
    /// [`Json::UInt`] (or [`Json::Int`] when negative); anything else
    /// parses as [`Json::Float`]. Trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogates only arise for astral-plane characters,
                        // which the renderer emits raw; reject rather than
                        // silently mangle.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?,
                        );
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are trustworthy).
                let rest = &b[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii");
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(i) = stripped.parse::<i64>() {
                return Ok(Json::Int(-i));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into [`Json`] for sweep parameters and results.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_tojson_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(u64::from(*self))
            }
        }
    )*};
}
impl_tojson_uint!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(*self))
            }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_is_stable() {
        let j = Json::object([
            ("name", "e12".to_json()),
            ("seed", 99u64.to_json()),
            ("probs", vec![0.5f64, 0.125].to_json()),
            ("ok", true.to_json()),
            ("missing", Json::Null),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"e12","seed":99,"probs":[0.5,0.125],"ok":true,"missing":null}"#
        );
    }

    #[test]
    fn floats_roundtrip_and_keep_marker() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Float(0.1).render(), "0.1");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        // Rust's Display never uses exponent form; huge values still get a
        // decimal marker and read back exactly.
        let big = Json::Float(1e300).render();
        assert!(big.ends_with(".0"));
        assert_eq!(big.parse::<f64>(), Ok(1e300));
    }

    #[test]
    fn strings_escaped() {
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), r#""a\"b\\c\n""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::object([("a", 1u32.to_json()), ("b", Json::Array(vec![Json::UInt(2)]))]);
        assert_eq!(j.render_pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n");
    }

    #[test]
    fn accessors_read_back_values() {
        let j = Json::object([("n", 8u32.to_json()), ("p", 0.5f64.to_json())]);
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(8));
        assert_eq!(j.get("p").and_then(Json::as_f64), Some(0.5));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(Json::UInt(3).as_f64(), Some(3.0));
    }

    #[test]
    fn empty_containers_compact() {
        assert_eq!(Json::Array(vec![]).render_pretty(), "[]\n");
        assert_eq!(Json::Object(vec![]).render(), "{}");
    }

    #[test]
    fn parse_roundtrips_render() {
        let j = Json::object([
            ("name", "perf/alloc\n\"x\"".to_json()),
            ("count", 18446744073709551615u64.to_json()),
            ("delta", Json::Int(-42)),
            ("ratio", 0.125f64.to_json()),
            ("flags", vec![true, false].to_json()),
            ("nothing", Json::Null),
            (
                "nested",
                Json::object([("empty_a", Json::Array(vec![])), ("empty_o", Json::Object(vec![]))]),
            ),
        ]);
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
        assert_eq!(Json::parse(&j.render_pretty()).unwrap(), j);
    }

    #[test]
    fn parse_distinguishes_number_kinds() {
        assert_eq!(Json::parse("7").unwrap(), Json::UInt(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("7.5").unwrap(), Json::Float(7.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}", "\"unterminated", "nan"]
        {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_handles_escapes() {
        assert_eq!(Json::parse(r#""aA\n\t\\""#).unwrap(), Json::Str("aA\n\t\\".into()));
        assert!(Json::parse(r#""\q""#).is_err());
        assert!(Json::parse(r#""\uD800""#).is_err(), "lone surrogate rejected");
    }
}
