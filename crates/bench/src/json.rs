//! Deterministic JSON encoding for benchmark artifacts.
//!
//! `BENCH_*.json` files must be byte-stable across runs, machines, and
//! thread counts, so this encoder is deliberately minimal and predictable:
//! object members keep insertion order (no hashing), floats render through
//! Rust's shortest-roundtrip formatting, and non-finite floats become
//! `null` (JSON has no NaN). The `serde` derives on the sweep types tag
//! them for downstream consumers; the bytes on disk come from here.

/// A JSON value. Objects preserve member insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (renders without decimal point).
    UInt(u64),
    /// Signed integer (renders without decimal point).
    Int(i64),
    /// Finite floats render shortest-roundtrip; non-finite render `null`.
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object as ordered members.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from ordered members.
    pub fn object(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as an `f64` (floats and integers both qualify).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (open_pad, close_pad, sep): (String, String, &str) = match indent {
            Some(w) => (
                format!("\n{}", " ".repeat(w * (depth + 1))),
                format!("\n{}", " ".repeat(w * depth)),
                ": ",
            ),
            None => (String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Shortest-roundtrip; force a decimal marker so the
                    // value reads back as a float.
                    let s = f.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&open_pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&open_pad);
                    write_escaped(out, k);
                    out.push_str(sep);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into [`Json`] for sweep parameters and results.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_tojson_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(u64::from(*self))
            }
        }
    )*};
}
impl_tojson_uint!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(*self))
            }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_is_stable() {
        let j = Json::object([
            ("name", "e12".to_json()),
            ("seed", 99u64.to_json()),
            ("probs", vec![0.5f64, 0.125].to_json()),
            ("ok", true.to_json()),
            ("missing", Json::Null),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"e12","seed":99,"probs":[0.5,0.125],"ok":true,"missing":null}"#
        );
    }

    #[test]
    fn floats_roundtrip_and_keep_marker() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Float(0.1).render(), "0.1");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        // Rust's Display never uses exponent form; huge values still get a
        // decimal marker and read back exactly.
        let big = Json::Float(1e300).render();
        assert!(big.ends_with(".0"));
        assert_eq!(big.parse::<f64>(), Ok(1e300));
    }

    #[test]
    fn strings_escaped() {
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), r#""a\"b\\c\n""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::object([("a", 1u32.to_json()), ("b", Json::Array(vec![Json::UInt(2)]))]);
        assert_eq!(j.render_pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n");
    }

    #[test]
    fn accessors_read_back_values() {
        let j = Json::object([("n", 8u32.to_json()), ("p", 0.5f64.to_json())]);
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(8));
        assert_eq!(j.get("p").and_then(Json::as_f64), Some(0.5));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(Json::UInt(3).as_f64(), Some(3.0));
    }

    #[test]
    fn empty_containers_compact() {
        assert_eq!(Json::Array(vec![]).render_pretty(), "[]\n");
        assert_eq!(Json::Object(vec![]).render(), "{}");
    }
}
