//! The bench gate: compares a fresh [`crate::perf`] run against a
//! committed baseline artifact.
//!
//! The measurement model splits every record's metrics in two:
//!
//! * **Deterministic counters** must match the baseline **exactly** — any
//!   drift means the engines now do different work (or a workload seed
//!   changed), which is precisely what the gate exists to catch.
//! * **Wall-clock** is compared within a multiplicative tolerance band.
//!   The default band is deliberately wide (CI machines are noisy); it is
//!   a catastrophic-slowdown tripwire, not a micro-benchmark. Getting
//!   *faster* never fails the gate.
//!
//! Structural drift — a benchmark missing from the fresh run, a benchmark
//! the baseline has never seen, a counter key appearing or vanishing — is
//! also a failure: it means the suite and the baseline no longer describe
//! the same experiment, and the fix is a deliberate `--bless`.

use crate::json::Json;
use crate::table::Table;
use std::fmt::Write as _;

/// Tunables for a gate run.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Maximum allowed `current.wall_ns / baseline.wall_ns` ratio.
    /// `<= 0` disables wall-clock checks entirely (counters-only mode).
    pub time_tolerance: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        // Wide on purpose: catches "accidentally quadratic", not jitter.
        GateConfig { time_tolerance: 25.0 }
    }
}

/// One divergence between baseline and current run.
#[derive(Debug, Clone, PartialEq)]
pub struct GateIssue {
    /// Benchmark name (`packet/run/n8`), or `<suite>` for structural issues.
    pub record: String,
    /// Metric the issue is about (`queue_pushes`, `wall_ns`, `<record>`…).
    pub metric: String,
    /// Baseline-side value, rendered (`-` when absent).
    pub baseline: String,
    /// Current-side value, rendered (`-` when absent).
    pub current: String,
    /// Human explanation of what went wrong.
    pub detail: String,
}

/// Outcome of comparing a fresh run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Every divergence found (empty ⇒ gate passes).
    pub issues: Vec<GateIssue>,
    /// Benchmarks present in both documents and compared.
    pub records_checked: usize,
    /// Counter keys compared exactly.
    pub counters_checked: usize,
    /// Wall-clock bands checked.
    pub time_checks: usize,
}

impl GateReport {
    /// True when no divergence was found.
    pub fn passed(&self) -> bool {
        self.issues.is_empty()
    }

    /// Readable diff table (or a one-line pass summary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            let _ = writeln!(
                out,
                "bench gate OK: {} benchmarks, {} exact counters, {} wall-clock bands",
                self.records_checked, self.counters_checked, self.time_checks
            );
            return out;
        }
        let mut t = Table::new(&["benchmark", "metric", "baseline", "current", "problem"]);
        for i in &self.issues {
            t.row(vec![
                i.record.clone(),
                i.metric.clone(),
                i.baseline.clone(),
                i.current.clone(),
                i.detail.clone(),
            ]);
        }
        let _ = writeln!(
            out,
            "bench gate FAILED: {} issue(s) across {} compared benchmark(s)",
            self.issues.len(),
            self.records_checked
        );
        out.push_str(&t.render());
        out.push_str("(deterministic counters must match exactly; re-bless with `bench_gate --bless` only for intended changes)\n");
        out
    }
}

/// One decoded benchmark record: (name, counters as (key, value), wall_ns).
type DecodedRecord = (String, Vec<(String, u64)>, u64);

/// A perf artifact decoded into comparable form.
struct Doc {
    /// Decoded records, in document order.
    records: Vec<DecodedRecord>,
}

/// Validates a `BENCH_PERF.json` document and extracts its records.
/// `Err` means the document is unusable (malformed / wrong schema), as
/// opposed to a usable document that merely diverges.
fn decode(which: &str, doc: &Json) -> Result<Doc, String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{which}: missing integer `schema_version`"))?;
    if version != crate::perf::SCHEMA_VERSION {
        return Err(format!(
            "{which}: schema_version {version} != supported {} (re-bless the baseline)",
            crate::perf::SCHEMA_VERSION
        ));
    }
    let records = match doc.get("records") {
        Some(Json::Array(items)) => items,
        _ => return Err(format!("{which}: missing `records` array")),
    };
    let mut out = Vec::with_capacity(records.len());
    for (i, rec) in records.iter().enumerate() {
        let name = rec
            .get("name")
            .and_then(|j| match j {
                Json::Str(s) => Some(s.clone()),
                _ => None,
            })
            .ok_or_else(|| format!("{which}: records[{i}] has no string `name`"))?;
        let counters = match rec.get("counters") {
            Some(Json::Object(members)) => {
                let mut cs = Vec::with_capacity(members.len());
                for (k, v) in members {
                    let v = v.as_u64().ok_or_else(|| {
                        format!("{which}: {name}: counter `{k}` is not an unsigned integer")
                    })?;
                    cs.push((k.clone(), v));
                }
                cs
            }
            _ => return Err(format!("{which}: {name}: missing `counters` object")),
        };
        let wall_ns = rec
            .get("wall_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{which}: {name}: missing integer `wall_ns`"))?;
        if out.iter().any(|(n, _, _)| *n == name) {
            return Err(format!("{which}: duplicate benchmark `{name}`"));
        }
        out.push((name, counters, wall_ns));
    }
    Ok(Doc { records: out })
}

/// Compares `current` against `baseline` under `cfg`.
///
/// `Err` = one of the documents is malformed or schema-incompatible
/// (callers should exit with a distinct code); `Ok` = comparison ran, and
/// [`GateReport::passed`] says whether it was clean.
pub fn compare(baseline: &Json, current: &Json, cfg: &GateConfig) -> Result<GateReport, String> {
    let base = decode("baseline", baseline)?;
    let cur = decode("current", current)?;
    let mut report = GateReport::default();

    for (name, _, _) in &base.records {
        if !cur.records.iter().any(|(n, _, _)| n == name) {
            report.issues.push(GateIssue {
                record: name.clone(),
                metric: "<record>".into(),
                baseline: "present".into(),
                current: "-".into(),
                detail: "benchmark missing from fresh run".into(),
            });
        }
    }
    for (name, counters, wall_ns) in &cur.records {
        let Some((_, base_counters, base_wall)) = base.records.iter().find(|(n, _, _)| n == name)
        else {
            report.issues.push(GateIssue {
                record: name.clone(),
                metric: "<record>".into(),
                baseline: "-".into(),
                current: "present".into(),
                detail: "benchmark not in baseline (bless to accept)".into(),
            });
            continue;
        };
        report.records_checked += 1;

        for (k, bv) in base_counters {
            match counters.iter().find(|(ck, _)| ck == k) {
                None => report.issues.push(GateIssue {
                    record: name.clone(),
                    metric: k.clone(),
                    baseline: bv.to_string(),
                    current: "-".into(),
                    detail: "counter key missing from fresh run".into(),
                }),
                Some((_, cv)) => {
                    report.counters_checked += 1;
                    if cv != bv {
                        let delta = *cv as i128 - *bv as i128;
                        report.issues.push(GateIssue {
                            record: name.clone(),
                            metric: k.clone(),
                            baseline: bv.to_string(),
                            current: cv.to_string(),
                            detail: format!("deterministic counter drifted ({delta:+})"),
                        });
                    }
                }
            }
        }
        for (k, cv) in counters {
            if !base_counters.iter().any(|(bk, _)| bk == k) {
                report.issues.push(GateIssue {
                    record: name.clone(),
                    metric: k.clone(),
                    baseline: "-".into(),
                    current: cv.to_string(),
                    detail: "counter key not in baseline (bless to accept)".into(),
                });
            }
        }

        if cfg.time_tolerance > 0.0 {
            report.time_checks += 1;
            // max(1) so a sub-nanosecond-rounding baseline can't divide by 0.
            let ratio = *wall_ns as f64 / (*base_wall).max(1) as f64;
            if ratio > cfg.time_tolerance {
                report.issues.push(GateIssue {
                    record: name.clone(),
                    metric: "wall_ns".into(),
                    baseline: base_wall.to_string(),
                    current: wall_ns.to_string(),
                    detail: format!(
                        "{ratio:.1}x slower than baseline (tolerance {:.1}x)",
                        cfg.time_tolerance
                    ),
                });
            }
        }
    }
    Ok(report)
}

/// Minimum `scalar / bitsliced_fast` wall-clock ratio the fresh run must
/// demonstrate for every `mc/structural` workload size (the bit-sliced
/// Monte-Carlo kernel's headline claim).
pub const MC_SPEEDUP_MIN: f64 = 10.0;

/// Minimum `reference / kernel` wall-clock ratio for the word-level IDA
/// codec (disperse and reconstruct vs their schoolbook references).
pub const IDA_SPEEDUP_MIN: f64 = 2.0;

/// Minimum 64-lane / 256-lane wall-clock ratio for the compat-draw
/// Monte-Carlo kernel at `n ≥ 10` (the 256-lane widening's claim; both
/// sides replay identical per-lane RNG streams, so the ratio isolates the
/// word width). Measured ≈ 6.5x in-container at `n = 10`; the floor
/// leaves a 2x machine margin.
pub const MC256_SPEEDUP_MIN: f64 = 3.0;

/// Minimum table / plane-parallel wall-clock ratio for the `GF(2^8)` row
/// ops on ≥ 64 KiB rows (`ida/rowops/*`): the bit-sliced polynomial
/// ladder must keep beating the hoisted-row product table on payloads
/// large enough to stream. Measured ≈ 3.3x in-container.
pub const IDA_ROWOPS_SPEEDUP_MIN: f64 = 2.0;

/// Minimum `tenants/reference / tenants/pooled` wall-clock ratio: the
/// pooled multi-tenant engine (persistent per-group simulator arenas,
/// flat admission scratch, memoized fault projections) against the
/// per-round-allocating reference. Both records are measured serially in
/// the same process, so machine speed cancels and the ratio isolates the
/// pooling. Measured ≈ 1.5x in-container (median of warmed full-rep
/// runs); the floor leaves margin for noisy shared runners.
pub const TENANTS_POOLED_SPEEDUP_MIN: f64 = 1.1;

/// Enforces the cross-record speedup floors on a *fresh* run (no baseline
/// involved: both sides of each ratio come from the same process, so
/// machine speed cancels out). Pairs:
///
/// * every `mc/structural/scalar/<size>` must be at least
///   [`MC_SPEEDUP_MIN`]× slower than
///   `mc/structural/bitsliced_fast/<size>`;
/// * every `mc/structural/bitsliced/n<N>` with `N ≥ 10` must be at least
///   [`MC256_SPEEDUP_MIN`]× slower than
///   `mc/structural/bitsliced256/n<N>` (the 256-lane widening);
/// * `ida/disperse_reference/…` / `ida/reconstruct_reference/…` must be at
///   least [`IDA_SPEEDUP_MIN`]× slower than their kernel counterparts;
/// * every `ida/rowops/table/len<L>` with `L ≥ 65536` must be at least
///   [`IDA_ROWOPS_SPEEDUP_MIN`]× slower than `ida/rowops/plane/len<L>`
///   (the plane-parallel row multiply);
/// * every `tenants/reference/n<N>` must be at least
///   [`TENANTS_POOLED_SPEEDUP_MIN`]× slower than `tenants/pooled/n<N>`
///   (the pooled multi-tenant engine vs its per-round-allocating
///   reference; both sides measured serially).
///
/// A pair whose kernel side is missing while its reference side exists is
/// an issue — the suite must measure what the gate enforces. `Err` means
/// the document is malformed (same contract as [`compare`]).
pub fn check_speedups(current: &Json) -> Result<GateReport, String> {
    let cur = decode("current", current)?;
    let wall = |name: &str| cur.records.iter().find(|(n, _, _)| n == name).map(|(_, _, w)| *w);
    let mut report = GateReport { records_checked: cur.records.len(), ..Default::default() };

    let require = |slow: &str, fast: &str, min: f64, report: &mut GateReport| {
        let Some(slow_w) = wall(slow) else { return };
        report.time_checks += 1;
        let Some(fast_w) = wall(fast) else {
            report.issues.push(GateIssue {
                record: fast.into(),
                metric: "wall_ns".into(),
                baseline: "-".into(),
                current: "-".into(),
                detail: format!("kernel record missing while `{slow}` is measured"),
            });
            return;
        };
        let ratio = slow_w as f64 / (fast_w.max(1)) as f64;
        if ratio < min {
            report.issues.push(GateIssue {
                record: fast.into(),
                metric: "wall_ns".into(),
                baseline: slow_w.to_string(),
                current: fast_w.to_string(),
                detail: format!("only {ratio:.1}x faster than `{slow}` (floor {min:.1}x)"),
            });
        }
    };

    let scalar_names: Vec<String> = cur
        .records
        .iter()
        .filter(|(n, _, _)| n.starts_with("mc/structural/scalar/"))
        .map(|(n, _, _)| n.clone())
        .collect();
    for slow in &scalar_names {
        let suffix = slow.strip_prefix("mc/structural/scalar/").expect("filtered on prefix");
        let fast = format!("mc/structural/bitsliced_fast/{suffix}");
        require(slow, &fast, MC_SPEEDUP_MIN, &mut report);
    }
    // 256-lane widening floor: only at n ≥ 10, where the workload is big
    // enough that the ratio measures the kernel, not fixed setup costs.
    let lane64_names: Vec<String> = cur
        .records
        .iter()
        .filter(|(n, _, _)| {
            n.strip_prefix("mc/structural/bitsliced/")
                .and_then(|s| s.strip_prefix('n'))
                .and_then(|d| d.parse::<u32>().ok())
                .is_some_and(|n| n >= 10)
        })
        .map(|(n, _, _)| n.clone())
        .collect();
    for slow in &lane64_names {
        let suffix = slow.strip_prefix("mc/structural/bitsliced/").expect("filtered on prefix");
        let fast = format!("mc/structural/bitsliced256/{suffix}");
        require(slow, &fast, MC256_SPEEDUP_MIN, &mut report);
    }
    require("ida/disperse_reference/w8k4", "ida/disperse/w8k4", IDA_SPEEDUP_MIN, &mut report);
    require("ida/reconstruct_reference/w8k4", "ida/reconstruct/w8k4", IDA_SPEEDUP_MIN, &mut report);
    // Plane-parallel row-op floor: only rows ≥ 64 KiB stream long enough
    // for the ladder's word-level advantage to dominate.
    let table_names: Vec<String> = cur
        .records
        .iter()
        .filter(|(n, _, _)| {
            n.strip_prefix("ida/rowops/table/")
                .and_then(|s| s.strip_prefix("len"))
                .and_then(|d| d.parse::<u64>().ok())
                .is_some_and(|len| len >= 65536)
        })
        .map(|(n, _, _)| n.clone())
        .collect();
    for slow in &table_names {
        let suffix = slow.strip_prefix("ida/rowops/table/").expect("filtered on prefix");
        let fast = format!("ida/rowops/plane/{suffix}");
        require(slow, &fast, IDA_ROWOPS_SPEEDUP_MIN, &mut report);
    }
    // Pooled multi-tenant engine floor: arena reuse must keep paying for
    // itself against the per-round-allocating reference at every host
    // size the suite measures.
    let tenant_ref_names: Vec<String> = cur
        .records
        .iter()
        .filter(|(n, _, _)| n.starts_with("tenants/reference/"))
        .map(|(n, _, _)| n.clone())
        .collect();
    for slow in &tenant_ref_names {
        let suffix = slow.strip_prefix("tenants/reference/").expect("filtered on prefix");
        let fast = format!("tenants/pooled/{suffix}");
        require(slow, &fast, TENANTS_POOLED_SPEEDUP_MIN, &mut report);
    }
    Ok(report)
}

/// Hard ceiling on `peak_alloc_bytes` for every implicit-host
/// memory-scaling workload (the `n = 20` acceptance bar: 1M nodes must
/// run the streamed structural estimator in well under a GiB).
pub const SCALE_PEAK_CEILING_BYTES: u64 = 1 << 30;

/// Name prefix of the original implicit-host memory-scaling records
/// (kept as a named constant; [`check_memory`] enforces every family in
/// [`SCALE_RECORD_PREFIXES`]).
pub const SCALE_RECORD_PREFIX: &str = "scale/structural/implicit/";

/// The memory-scaling record families [`check_memory`] enforces. Each
/// family is anchored independently — the streamed structural estimator
/// and the multi-tenant ledger have different absolute footprints, but
/// both must stay sub-linear in host size.
pub const SCALE_RECORD_PREFIXES: [&str; 2] = [SCALE_RECORD_PREFIX, "scale/tenants/"];

/// Enforces the implicit-host memory model on a *fresh* run (no baseline
/// involved — `peak_alloc_bytes` is a deterministic counter, so both
/// checks are exact):
///
/// * every record in a [`SCALE_RECORD_PREFIXES`] family must keep
///   `peak_alloc_bytes` under [`SCALE_PEAK_CEILING_BYTES`];
/// * within each family, every record's bytes-per-node must not exceed
///   that of the family's *smallest* recorded size — the implicit layer's
///   footprint shrinks *relative to the topology* as `n` grows, so any
///   `O(n·2^n)` table sneaking back in breaks this immediately. (The
///   anchor is the smallest size, not the previous one, because the
///   Theorem-1 row subcube width jumps with `n mod 4` and makes
///   consecutive ratios non-monotone.)
///
/// A run with no scale records passes vacuously (pre-implicit-layer
/// artifacts remain gateable). `Err` means the document is malformed
/// (same contract as [`compare`]).
pub fn check_memory(current: &Json) -> Result<GateReport, String> {
    let cur = decode("current", current)?;
    let mut report = GateReport::default();
    let counter =
        |cs: &[(String, u64)], key: &str| cs.iter().find(|(k, _)| k == key).map(|&(_, v)| v);

    for prefix in SCALE_RECORD_PREFIXES {
        // (nodes, peak, name) for every family record carrying both counters.
        let mut scale: Vec<(u64, u64, String)> = Vec::new();
        for (name, counters, _) in &cur.records {
            if !name.starts_with(prefix) {
                continue;
            }
            report.records_checked += 1;
            let (Some(nodes), Some(peak)) =
                (counter(counters, "nodes"), counter(counters, "peak_alloc_bytes"))
            else {
                report.issues.push(GateIssue {
                    record: name.clone(),
                    metric: "nodes/peak_alloc_bytes".into(),
                    baseline: "-".into(),
                    current: "-".into(),
                    detail: "scale record lacks the memory counters".into(),
                });
                continue;
            };
            report.counters_checked += 1;
            if peak > SCALE_PEAK_CEILING_BYTES {
                report.issues.push(GateIssue {
                    record: name.clone(),
                    metric: "peak_alloc_bytes".into(),
                    baseline: SCALE_PEAK_CEILING_BYTES.to_string(),
                    current: peak.to_string(),
                    detail: "peak allocation exceeds the scale ceiling".into(),
                });
            }
            scale.push((nodes, peak, name.clone()));
        }

        scale.sort_by_key(|&(nodes, _, _)| nodes);
        if let Some((nodes_a, peak_a, _)) = scale.first().cloned() {
            for (nodes_b, peak_b, name_b) in &scale[1..] {
                report.counters_checked += 1;
                // bytes/node at every larger size must not exceed it at
                // the family's smallest (cross-multiplied in u128 to
                // avoid both overflow and float fuzz).
                if u128::from(*peak_b) * u128::from(nodes_a)
                    > u128::from(peak_a) * u128::from(*nodes_b)
                {
                    report.issues.push(GateIssue {
                        record: name_b.clone(),
                        metric: "peak_alloc_bytes/node".into(),
                        baseline: format!("{peak_a}B @ {nodes_a} nodes"),
                        current: format!("{peak_b}B @ {nodes_b} nodes"),
                        detail: "bytes per node grew with n (implicit layer regressed)".into(),
                    });
                }
            }
        }
    }
    Ok(report)
}

/// Merges a fresh run into a baseline for `bench_gate --bless-append`:
/// every fresh record whose name the baseline has never seen is appended
/// (in fresh-run order); records already present are left **untouched** —
/// their counters and wall-clock are not refreshed, so re-rendering the
/// document reproduces the old records byte-for-byte and a diff of the
/// blessed file shows additions only.
///
/// Returns the names appended. `Err` means one of the documents is
/// malformed or schema-incompatible (same contract as [`compare`]).
pub fn append_new_records(baseline: &mut Json, fresh: &Json) -> Result<Vec<String>, String> {
    let base = decode("baseline", baseline)?;
    decode("current", fresh)?;
    let fresh_records = match fresh.get("records") {
        Some(Json::Array(items)) => items,
        _ => unreachable!("decode validated the records array"),
    };
    let mut appended = Vec::new();
    let mut to_add = Vec::new();
    for rec in fresh_records {
        let name = rec.get("name").and_then(Json::as_str).expect("decode validated names");
        if !base.records.iter().any(|(n, _, _)| n == name) {
            appended.push(name.to_string());
            to_add.push(rec.clone());
        }
    }
    if let Json::Object(members) = baseline {
        if let Some((_, Json::Array(records))) = members.iter_mut().find(|(k, _)| k == "records") {
            records.extend(to_add);
        }
    }
    Ok(appended)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::ToJson;

    /// Test record literal: (name, counters as (key, value), wall_ns).
    type RecordSpec<'a> = (&'a str, &'a [(&'a str, u64)], u64);

    fn doc(records: &[RecordSpec<'_>]) -> Json {
        Json::object([
            ("schema_version", crate::perf::SCHEMA_VERSION.to_json()),
            ("suite", "perf_suite".to_json()),
            (
                "records",
                Json::Array(
                    records
                        .iter()
                        .map(|(name, counters, wall)| {
                            Json::object([
                                ("name", (*name).to_json()),
                                (
                                    "counters",
                                    Json::Object(
                                        counters
                                            .iter()
                                            .map(|(k, v)| ((*k).to_string(), v.to_json()))
                                            .collect(),
                                    ),
                                ),
                                ("wall_ns", wall.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn identical_documents_pass() {
        let d = doc(&[("a/b", &[("steps", 7), ("hops", 9)], 1000)]);
        let r = compare(&d, &d, &GateConfig::default()).unwrap();
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.records_checked, 1);
        assert_eq!(r.counters_checked, 2);
        assert_eq!(r.time_checks, 1);
        assert!(r.render().contains("bench gate OK"));
    }

    #[test]
    fn counter_drift_fails_exactly() {
        let base = doc(&[("a/b", &[("steps", 7)], 1000)]);
        let cur = doc(&[("a/b", &[("steps", 8)], 1000)]);
        let r = compare(&base, &cur, &GateConfig::default()).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert_eq!(r.issues[0].metric, "steps");
        assert!(r.issues[0].detail.contains("+1"));
        assert!(r.render().contains("bench gate FAILED"));
    }

    #[test]
    fn wall_clock_band_is_one_sided() {
        let base = doc(&[("a/b", &[], 1000)]);
        let fast = doc(&[("a/b", &[], 10)]); // 100x faster: fine
        let slow = doc(&[("a/b", &[], 3001)]); // 3.001x slower
        let cfg = GateConfig { time_tolerance: 3.0 };
        assert!(compare(&base, &fast, &cfg).unwrap().passed());
        let r = compare(&base, &slow, &cfg).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert_eq!(r.issues[0].metric, "wall_ns");
        let disabled = GateConfig { time_tolerance: 0.0 };
        assert!(compare(&base, &slow, &disabled).unwrap().passed());
    }

    #[test]
    fn structural_drift_fails() {
        let base = doc(&[("gone", &[("k", 1)], 10), ("both", &[("k", 1), ("old", 2)], 10)]);
        let cur = doc(&[("both", &[("k", 1), ("new", 3)], 10), ("added", &[], 10)]);
        let r = compare(&base, &cur, &GateConfig::default()).unwrap();
        let metrics: Vec<(&str, &str)> =
            r.issues.iter().map(|i| (i.record.as_str(), i.metric.as_str())).collect();
        assert!(metrics.contains(&("gone", "<record>")));
        assert!(metrics.contains(&("added", "<record>")));
        assert!(metrics.contains(&("both", "old")), "missing counter key");
        assert!(metrics.contains(&("both", "new")), "extra counter key");
        assert_eq!(r.issues.len(), 4);
    }

    #[test]
    fn bless_append_adds_only_new_records_and_preserves_old_bytes() {
        let mut baseline = doc(&[("old/a", &[("steps", 7)], 1000), ("old/b", &[], 50)]);
        let original_bytes = baseline.render_pretty();
        // The fresh run re-measures old records (different wall, drifted
        // counter) and adds two new ones.
        let fresh = doc(&[
            ("old/a", &[("steps", 999)], 1),
            ("new/x", &[("k", 3)], 20),
            ("old/b", &[], 2),
            ("new/y", &[], 30),
        ]);
        let added = append_new_records(&mut baseline, &fresh).unwrap();
        assert_eq!(added, vec!["new/x".to_string(), "new/y".to_string()]);
        let merged = baseline.render_pretty();
        // Additions only: the old document is a literal prefix-preserving
        // subset — every original line survives verbatim.
        for line in original_bytes.lines() {
            if !line.trim_start().starts_with(['}', ']']) {
                assert!(merged.contains(line), "lost baseline line {line:?}");
            }
        }
        // Old records keep their blessed values, not the fresh ones.
        let steps = baseline
            .get("records")
            .and_then(|r| match r {
                Json::Array(items) => items.first().cloned(),
                _ => None,
            })
            .and_then(|r| r.get("counters").and_then(|c| c.get("steps").and_then(Json::as_u64)));
        assert_eq!(steps, Some(7));
        // Idempotent: a second append adds nothing.
        assert_eq!(append_new_records(&mut baseline, &fresh).unwrap(), Vec::<String>::new());
        // And the merged doc now gates cleanly against a matching run.
        let matching = doc(&[
            ("old/a", &[("steps", 7)], 1000),
            ("old/b", &[], 50),
            ("new/x", &[("k", 3)], 20),
            ("new/y", &[], 30),
        ]);
        assert!(compare(&baseline, &matching, &GateConfig::default()).unwrap().passed());
    }

    #[test]
    fn speedup_floors_pass_fail_and_flag_missing_kernels() {
        // Healthy run: every kernel clears its floor.
        let healthy = doc(&[
            ("mc/structural/scalar/n6", &[], 12_000),
            ("mc/structural/bitsliced_fast/n6", &[], 1_000),
            ("ida/disperse_reference/w8k4", &[], 500),
            ("ida/disperse/w8k4", &[], 100),
            ("ida/reconstruct_reference/w8k4", &[], 400),
            ("ida/reconstruct/w8k4", &[], 100),
        ]);
        let r = check_speedups(&healthy).unwrap();
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.time_checks, 3);

        // The MC kernel slipped below 10x: one issue, naming both records.
        let slipped = doc(&[
            ("mc/structural/scalar/n6", &[], 9_999),
            ("mc/structural/bitsliced_fast/n6", &[], 1_000),
        ]);
        let r = check_speedups(&slipped).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert_eq!(r.issues[0].record, "mc/structural/bitsliced_fast/n6");
        assert!(r.issues[0].detail.contains("floor 10.0x"), "{}", r.issues[0].detail);

        // A measured reference with no kernel counterpart is an issue.
        let orphaned = doc(&[("mc/structural/scalar/n8", &[], 9_999)]);
        let r = check_speedups(&orphaned).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert!(r.issues[0].detail.contains("missing"), "{}", r.issues[0].detail);

        // No reference records at all (e.g. a pre-kernel artifact): nothing
        // to enforce, nothing to fail.
        let unrelated = doc(&[("packet/run/n6", &[], 1_000)]);
        let r = check_speedups(&unrelated).unwrap();
        assert!(r.passed());
        assert_eq!(r.time_checks, 0);
    }

    #[test]
    fn lane256_floor_applies_only_from_n10_up() {
        // n6 is below the floor's size cutoff — a poor small-size ratio is
        // not an issue; n10 is enforced and this one clears 3x.
        let healthy = doc(&[
            ("mc/structural/bitsliced/n6", &[], 1_100),
            ("mc/structural/bitsliced256/n6", &[], 1_000),
            ("mc/structural/bitsliced/n10", &[], 6_500),
            ("mc/structural/bitsliced256/n10", &[], 1_000),
        ]);
        let r = check_speedups(&healthy).unwrap();
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.time_checks, 1);

        // The widening slipped below 3x at n10: one issue.
        let slipped = doc(&[
            ("mc/structural/bitsliced/n10", &[], 2_999),
            ("mc/structural/bitsliced256/n10", &[], 1_000),
        ]);
        let r = check_speedups(&slipped).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert_eq!(r.issues[0].record, "mc/structural/bitsliced256/n10");
        assert!(r.issues[0].detail.contains("floor 3.0x"), "{}", r.issues[0].detail);

        // A measured 64-lane record at n ≥ 10 with no 256-lane counterpart
        // is an issue — the suite must measure what the gate enforces.
        let orphaned = doc(&[("mc/structural/bitsliced/n12", &[], 9_999)]);
        let r = check_speedups(&orphaned).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert!(r.issues[0].detail.contains("missing"), "{}", r.issues[0].detail);
    }

    #[test]
    fn tenants_pooled_floor_pairs_reference_with_pooled() {
        // Healthy: the pooled engine clears the floor at both host sizes.
        let healthy = doc(&[
            ("tenants/reference/n16", &[], 3_000),
            ("tenants/pooled/n16", &[], 1_000),
            ("tenants/reference/n20", &[], 3_300),
            ("tenants/pooled/n20", &[], 1_100),
            ("tenants/parallel/n16", &[], 400), // no floor of its own
        ]);
        let r = check_speedups(&healthy).unwrap();
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.time_checks, 2);

        // Pooling slipped below the floor at one size: one issue.
        let slipped =
            doc(&[("tenants/reference/n16", &[], 1_050), ("tenants/pooled/n16", &[], 1_000)]);
        let r = check_speedups(&slipped).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert_eq!(r.issues[0].record, "tenants/pooled/n16");
        assert!(r.issues[0].detail.contains("floor 1.1x"), "{}", r.issues[0].detail);

        // A measured reference with no pooled counterpart is an issue —
        // the suite must measure what the gate enforces.
        let orphaned = doc(&[("tenants/reference/n20", &[], 9_999)]);
        let r = check_speedups(&orphaned).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert!(r.issues[0].detail.contains("missing"), "{}", r.issues[0].detail);
    }

    #[test]
    fn rowops_floor_applies_only_from_64kib_up() {
        // Small rows are exempt; the 64 KiB row is enforced and clears 2x.
        let healthy = doc(&[
            ("ida/rowops/table/len4096", &[], 1_100),
            ("ida/rowops/plane/len4096", &[], 1_000),
            ("ida/rowops/table/len65536", &[], 2_500),
            ("ida/rowops/plane/len65536", &[], 1_000),
        ]);
        let r = check_speedups(&healthy).unwrap();
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.time_checks, 1);

        // The ladder slipped below 2x on the streaming row: one issue.
        let slipped = doc(&[
            ("ida/rowops/table/len65536", &[], 1_999),
            ("ida/rowops/plane/len65536", &[], 1_000),
        ]);
        let r = check_speedups(&slipped).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert_eq!(r.issues[0].record, "ida/rowops/plane/len65536");
        assert!(r.issues[0].detail.contains("floor 2.0x"), "{}", r.issues[0].detail);
    }

    #[test]
    fn memory_gate_pins_ceiling_and_per_node_trend() {
        // Healthy: under the ceiling, bytes/node strictly shrinking.
        let healthy = doc(&[
            ("scale/structural/implicit/n10", &[("nodes", 1 << 10), ("peak_alloc_bytes", 4096)], 1),
            (
                "scale/structural/implicit/n14",
                &[("nodes", 1 << 14), ("peak_alloc_bytes", 16384)],
                1,
            ),
            ("packet/run/n6", &[("steps", 9)], 1), // ignored: not a scale record
        ]);
        let r = check_memory(&healthy).unwrap();
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.records_checked, 2);
        assert_eq!(r.counters_checked, 3); // two ceilings + one pair

        // Ceiling breach.
        let huge = doc(&[(
            "scale/structural/implicit/n20",
            &[("nodes", 1 << 20), ("peak_alloc_bytes", SCALE_PEAK_CEILING_BYTES + 1)],
            1,
        )]);
        let r = check_memory(&huge).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert!(r.issues[0].detail.contains("ceiling"), "{}", r.issues[0].detail);

        // Bytes/node growing with n: an O(n·2^n) table crept back in.
        let regressed = doc(&[
            ("scale/structural/implicit/n10", &[("nodes", 1 << 10), ("peak_alloc_bytes", 1024)], 1),
            (
                "scale/structural/implicit/n14",
                &[("nodes", 1 << 14), ("peak_alloc_bytes", 32768)], // 2 B/node vs 1 B/node
                1,
            ),
        ]);
        let r = check_memory(&regressed).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert_eq!(r.issues[0].record, "scale/structural/implicit/n14");
        assert!(r.issues[0].detail.contains("per node"), "{}", r.issues[0].detail);

        // Equal bytes/node is allowed (non-increasing, not strictly less).
        let flat = doc(&[
            ("scale/structural/implicit/n10", &[("nodes", 1 << 10), ("peak_alloc_bytes", 2048)], 1),
            ("scale/structural/implicit/n11", &[("nodes", 1 << 11), ("peak_alloc_bytes", 4096)], 1),
        ]);
        assert!(check_memory(&flat).unwrap().passed());

        // A scale record without the counters is itself an issue.
        let lacking = doc(&[("scale/structural/implicit/n10", &[("nodes", 1 << 10)], 1)]);
        let r = check_memory(&lacking).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert!(r.issues[0].detail.contains("lacks"), "{}", r.issues[0].detail);

        // No scale records: vacuous pass.
        let none = doc(&[("packet/run/n6", &[], 1)]);
        let r = check_memory(&none).unwrap();
        assert!(r.passed());
        assert_eq!(r.records_checked, 0);
    }

    #[test]
    fn memory_gate_anchors_each_family_independently() {
        // The tenants ledger family has a different absolute footprint
        // than the structural family; a heavier tenants record must not
        // be judged against the structural anchor.
        let mixed = doc(&[
            ("scale/structural/implicit/n10", &[("nodes", 1 << 10), ("peak_alloc_bytes", 1024)], 1),
            ("scale/tenants/ledger/n12", &[("nodes", 1 << 12), ("peak_alloc_bytes", 1 << 20)], 1),
            ("scale/tenants/ledger/n16", &[("nodes", 1 << 16), ("peak_alloc_bytes", 1 << 20)], 1),
        ]);
        let r = check_memory(&mixed).unwrap();
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.records_checked, 3);

        // But a regression inside the tenants family is still caught.
        let regressed = doc(&[
            ("scale/tenants/ledger/n12", &[("nodes", 1 << 12), ("peak_alloc_bytes", 4096)], 1),
            ("scale/tenants/ledger/n16", &[("nodes", 1 << 16), ("peak_alloc_bytes", 1 << 20)], 1),
        ]);
        let r = check_memory(&regressed).unwrap();
        assert_eq!(r.issues.len(), 1);
        assert_eq!(r.issues[0].record, "scale/tenants/ledger/n16");
    }

    #[test]
    fn bless_append_rejects_malformed_documents() {
        let good = doc(&[("a", &[], 1)]);
        let mut bad = Json::object([("records", Json::Array(vec![]))]);
        assert!(append_new_records(&mut bad, &good).is_err());
        let mut base = good.clone();
        let no_version = Json::object([("records", Json::Array(vec![]))]);
        assert!(append_new_records(&mut base, &no_version).is_err());
    }

    #[test]
    fn malformed_documents_are_errors_not_failures() {
        let good = doc(&[("a", &[], 1)]);
        let no_version = Json::object([("records", Json::Array(vec![]))]);
        assert!(compare(&no_version, &good, &GateConfig::default()).is_err());
        let wrong_version =
            Json::object([("schema_version", 999u64.to_json()), ("records", Json::Array(vec![]))]);
        assert!(compare(&good, &wrong_version, &GateConfig::default()).is_err());
        let bad_counter = Json::object([
            ("schema_version", crate::perf::SCHEMA_VERSION.to_json()),
            (
                "records",
                Json::Array(vec![Json::object([
                    ("name", "x".to_json()),
                    ("counters", Json::Object(vec![("k".into(), "oops".to_json())])),
                    ("wall_ns", 1u64.to_json()),
                ])]),
            ),
        ]);
        assert!(compare(&good, &bad_counter, &GateConfig::default()).is_err());
    }
}
