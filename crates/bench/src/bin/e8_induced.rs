//! E8 — Theorem 4: the multiple-copy → multiple-path transformation.
//!
//! `--json [PATH]` additionally writes the table as a sweep artifact
//! (`BENCH_E8_INDUCED.json` by default).

use hyperpath_bench::experiments::{maybe_write_json, parse_cli, tables_output};
use hyperpath_bench::Table;
use hyperpath_core::baseline::multi_copy_cycles;
use hyperpath_core::ccc_copies::butterfly_multi_copy;
use hyperpath_core::induced::theorem4;
use hyperpath_embedding::validate::validate_multi_path;

fn main() {
    let opts = parse_cli(false);
    println!("E8: Theorem 4 — X(G) in Q_2n with width n, n-packet cost c + 2δ\n");
    let mut t = Table::new(&[
        "G",
        "n",
        "host",
        "width",
        "packets",
        "claimed c+2δ",
        "certified cost",
        "natural?",
    ]);
    for n in [4u32, 6, 8] {
        let copies = multi_copy_cycles(n).expect("Lemma 1");
        let (x, claimed) = theorem4(&copies).expect("transformation");
        validate_multi_path(&x.embedding, n as usize, Some(1)).expect("validation");
        t.row(vec![
            format!("C_{}", 1u64 << n),
            n.to_string(),
            format!("Q_{}", 2 * n),
            n.to_string(),
            x.packets.to_string(),
            claimed.to_string(),
            x.cost.to_string(),
            x.natural_schedule_ok.to_string(),
        ]);
    }
    for m in [2u32, 4] {
        let copies = butterfly_multi_copy(m).expect("Section 5.4");
        let n = copies.host.dims();
        let (x, claimed) = theorem4(&copies).expect("transformation");
        validate_multi_path(&x.embedding, n as usize, Some(1)).expect("validation");
        t.row(vec![
            format!("BF_{m}"),
            n.to_string(),
            format!("Q_{}", 2 * n),
            n.to_string(),
            x.packets.to_string(),
            claimed.to_string(),
            x.cost.to_string(),
            x.natural_schedule_ok.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Cycles: c=1, δ=1 → cost 3, exactly as Theorem 1 (power-of-two n certify naturally).");
    println!(
        "Butterflies: dilation-2 copies and non-power-of-two n cost a few extra steps (measured)."
    );
    maybe_write_json(&tables_output("e8_induced", &[("theorem4", &t)]), &opts);
}
