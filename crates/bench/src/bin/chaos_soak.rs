//! Chaos/soak harness binary: seed-pinned randomized fault plans through
//! both engines and both delivery protocols, under invariant checks.
//!
//! ```text
//! chaos_soak [--seed S] [--trials N] [--dims N] [--tenants] [--threads N] [--json [PATH]]
//! ```
//!
//! Defaults: the CI smoke preset (`--seed 42 --trials 16 --dims 6`).
//! `--tenants` runs the multi-tenant chaos mode instead: randomized
//! host-level [`TenantFaultPlan`]s against the fault-aware tenant engine,
//! checking conservation, no-wrong-bytes, empty-plan bit-identity with
//! the plan-free engine, learned-vs-omniscient grade equality on static
//! plans, and monotone degradation in both fault rate and tenant count.
//! `--threads N` pins the worker pool for the tenant engine's
//! round-parallel group phases. `--json` writes the full report
//! (`CHAOS_SOAK.json`, or `CHAOS_TENANTS.json` in tenants mode, by
//! default). The report is a pure function of the flags — identical
//! bytes across runs and thread counts — so CI can diff two runs to
//! prove it. Exits 1 if any invariant was violated, so the smoke jobs
//! fail loudly.
//!
//! [`TenantFaultPlan`]: hyperpath_sim::tenants::TenantFaultPlan

use hyperpath_bench::experiments::{parse_cli_for, CliAccepts};
use hyperpath_bench::json::{Json, ToJson};
use hyperpath_sim::chaos::{
    run_chaos, run_chaos_tenants, ChaosConfig, ChaosReport, ChaosTenantsReport,
};

fn config_to_json(c: &ChaosConfig) -> Json {
    Json::object([
        ("seed", c.seed.to_json()),
        ("trials", c.trials.to_json()),
        ("dims", c.dims.to_json()),
        ("message_len", c.message_len.to_json()),
        ("max_retries", c.max_retries.to_json()),
    ])
}

fn report_to_json(r: &ChaosReport) -> Json {
    Json::object([
        ("suite", "chaos_soak".to_json()),
        // Which bit-sliced kernel feature path produced this artifact
        // ("portable" or "simd") — the payload must not depend on it.
        ("kernel", hyperpath_sim::kernel_feature_path().to_json()),
        ("mode", "engines".to_json()),
        ("config", config_to_json(&r.config)),
        ("violations", r.violations.to_json()),
        ("dominance_violations", r.dominance_violations.to_json()),
        ("ok", r.ok().to_json()),
        (
            "trials",
            Json::Array(
                r.trials
                    .iter()
                    .map(|t| {
                        Json::object([
                            ("trial", t.trial.to_json()),
                            ("static_fail_stop", t.static_fail_stop.to_json()),
                            ("initial_faults", t.initial_faults.to_json()),
                            ("events", t.events.to_json()),
                            ("corrupting_links", t.corrupting_links.to_json()),
                            ("packet_delivered", t.packet_delivered.to_json()),
                            ("packet_lost", t.packet_lost.to_json()),
                            ("packet_corrupted", t.packet_corrupted.to_json()),
                            ("worm_lost", t.worm_lost.to_json()),
                            ("worm_corrupted", t.worm_corrupted.to_json()),
                            ("oracle_recovered", t.oracle_recovered.to_json()),
                            ("oracle_lost", t.oracle_lost.to_json()),
                            ("adaptive_recovered", t.adaptive_recovered.to_json()),
                            ("adaptive_lost", t.adaptive_lost.to_json()),
                            ("adaptive_rejected", t.adaptive_rejected.to_json()),
                            ("dominance_violation", t.dominance_violation.to_json()),
                            (
                                "violations",
                                Json::Array(
                                    t.violations.iter().map(|v| v.as_str().to_json()).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn tenants_report_to_json(r: &ChaosTenantsReport) -> Json {
    Json::object([
        ("suite", "chaos_soak".to_json()),
        ("kernel", hyperpath_sim::kernel_feature_path().to_json()),
        ("mode", "tenants".to_json()),
        ("config", config_to_json(&r.config)),
        ("violations", r.violations.to_json()),
        ("ok", r.ok().to_json()),
        (
            "trials",
            Json::Array(
                r.trials
                    .iter()
                    .map(|t| {
                        Json::object([
                            ("trial", t.trial.to_json()),
                            ("static_fail_stop", t.static_fail_stop.to_json()),
                            ("tenants", t.tenants.to_json()),
                            ("cuts", t.cuts.to_json()),
                            ("outages", t.outages.to_json()),
                            ("corrupting_links", t.corrupting_links.to_json()),
                            ("requested", t.requested.to_json()),
                            ("delivered", t.delivered.to_json()),
                            ("degraded", t.degraded.to_json()),
                            ("recovered", t.recovered.to_json()),
                            ("lost", t.lost.to_json()),
                            ("requeues", t.requeues.to_json()),
                            ("shares_lost", t.shares_lost.to_json()),
                            ("shares_corrupted", t.shares_corrupted.to_json()),
                            ("quarantined_links", t.quarantined_links.to_json()),
                            (
                                "violations",
                                Json::Array(
                                    t.violations.iter().map(|v| v.as_str().to_json()).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn write_report(json: Json, path: &std::path::Path) {
    std::fs::write(path, json.render_pretty()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(2);
    });
    println!("report written to {}", path.display());
}

fn main() {
    let accepts = CliAccepts { trials: true, dims: true, seed: true, tenants: true, threads: true };
    let opts = parse_cli_for(accepts);
    // The report is byte-identical at any worker count; the pin exists so
    // CI can prove that by diffing runs.
    let pool = opts
        .threads
        .map(|t| rayon::ThreadPoolBuilder::new().num_threads(t).build().expect("thread pool"));
    let mut cfg = ChaosConfig::smoke(42);
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    if let Some(trials) = opts.trials {
        cfg.trials = trials as usize;
    }
    if let Some(dims) = &opts.dims {
        if dims.len() != 1 {
            eprintln!("error: chaos_soak takes a single --dims value, got {dims:?}");
            std::process::exit(2);
        }
        cfg.dims = dims[0];
    }
    let json_path = opts.json.as_ref().map(|p| match p {
        Some(path) => path.clone(),
        None => std::path::PathBuf::from(if opts.tenants {
            "CHAOS_TENANTS.json"
        } else {
            "CHAOS_SOAK.json"
        }),
    });

    if opts.tenants {
        println!(
            "chaos_soak --tenants: {} trials on Q_{}, seed {} (even trials static fail-stop \
             at ample capacity, odd dynamic under contention)",
            cfg.trials, cfg.dims, cfg.seed
        );
        let report = match &pool {
            Some(p) => p.install(|| run_chaos_tenants(&cfg)),
            None => run_chaos_tenants(&cfg),
        };
        for t in &report.trials {
            println!(
                "  trial {:3} [{}]: tenants={} cuts={} outages={} corrupting={} | \
                 {}req {}del ({}rec) {}lost | {}sl/{}sc | quarantined={}{}",
                t.trial,
                if t.static_fail_stop { "static " } else { "dynamic" },
                t.tenants,
                t.cuts,
                t.outages,
                t.corrupting_links,
                t.requested,
                t.delivered,
                t.recovered,
                t.lost,
                t.shares_lost,
                t.shares_corrupted,
                t.quarantined_links,
                if t.violations.is_empty() { "" } else { " VIOLATIONS" },
            );
            for v in &t.violations {
                println!("    !! {v}");
            }
        }
        println!("\n{} trials, {} invariant violations", report.trials.len(), report.violations);
        if let Some(path) = json_path {
            write_report(tenants_report_to_json(&report), &path);
        }
        if !report.ok() {
            eprintln!("chaos_soak: invariant violations detected");
            std::process::exit(1);
        }
        return;
    }

    println!(
        "chaos_soak: {} trials on Q_{}, seed {} (even trials static fail-stop, odd dynamic)",
        cfg.trials, cfg.dims, cfg.seed
    );
    let report = match &pool {
        Some(p) => p.install(|| run_chaos(&cfg)),
        None => run_chaos(&cfg),
    };
    for t in &report.trials {
        println!(
            "  trial {:3} [{}]: faults={} events={} corrupting={} | packets {}d/{}l/{}c | \
             worms {}l/{}c | oracle {}r/{}l | adaptive {}r/{}l ({} rejected){}{}",
            t.trial,
            if t.static_fail_stop { "static " } else { "dynamic" },
            t.initial_faults,
            t.events,
            t.corrupting_links,
            t.packet_delivered,
            t.packet_lost,
            t.packet_corrupted,
            t.worm_lost,
            t.worm_corrupted,
            t.oracle_recovered,
            t.oracle_lost,
            t.adaptive_recovered,
            t.adaptive_lost,
            t.adaptive_rejected,
            if t.dominance_violation { " [adaptive beat oracle]" } else { "" },
            if t.violations.is_empty() { "" } else { " VIOLATIONS" },
        );
        for v in &t.violations {
            println!("    !! {v}");
        }
    }
    println!(
        "\n{} trials, {} invariant violations, {} informational dominance inversions",
        report.trials.len(),
        report.violations,
        report.dominance_violations
    );

    if let Some(path) = json_path {
        write_report(report_to_json(&report), &path);
    }

    if !report.ok() {
        eprintln!("chaos_soak: invariant violations detected");
        std::process::exit(1);
    }
}
