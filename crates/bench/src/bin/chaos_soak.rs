//! Chaos/soak harness binary: seed-pinned randomized fault plans through
//! both engines and both delivery protocols, under invariant checks.
//!
//! ```text
//! chaos_soak [--seed S] [--trials N] [--dims N] [--json [PATH]]
//! ```
//!
//! Defaults: the CI smoke preset (`--seed 42 --trials 16 --dims 6`).
//! `--json` writes the full report (`CHAOS_SOAK.json` by default). The
//! report is a pure function of the flags — identical bytes across runs
//! and thread counts — so CI can diff two runs to prove it. Exits 1 if
//! any invariant was violated, so the smoke job fails loudly.

use hyperpath_bench::json::{Json, ToJson};
use hyperpath_sim::chaos::{run_chaos, ChaosConfig, ChaosReport};

fn report_to_json(r: &ChaosReport) -> Json {
    Json::object([
        ("suite", "chaos_soak".to_json()),
        // Which bit-sliced kernel feature path produced this artifact
        // ("portable" or "simd") — the payload must not depend on it.
        ("kernel", hyperpath_sim::kernel_feature_path().to_json()),
        (
            "config",
            Json::object([
                ("seed", r.config.seed.to_json()),
                ("trials", r.config.trials.to_json()),
                ("dims", r.config.dims.to_json()),
                ("message_len", r.config.message_len.to_json()),
                ("max_retries", r.config.max_retries.to_json()),
            ]),
        ),
        ("violations", r.violations.to_json()),
        ("dominance_violations", r.dominance_violations.to_json()),
        ("ok", r.ok().to_json()),
        (
            "trials",
            Json::Array(
                r.trials
                    .iter()
                    .map(|t| {
                        Json::object([
                            ("trial", t.trial.to_json()),
                            ("static_fail_stop", t.static_fail_stop.to_json()),
                            ("initial_faults", t.initial_faults.to_json()),
                            ("events", t.events.to_json()),
                            ("corrupting_links", t.corrupting_links.to_json()),
                            ("packet_delivered", t.packet_delivered.to_json()),
                            ("packet_lost", t.packet_lost.to_json()),
                            ("packet_corrupted", t.packet_corrupted.to_json()),
                            ("worm_lost", t.worm_lost.to_json()),
                            ("worm_corrupted", t.worm_corrupted.to_json()),
                            ("oracle_recovered", t.oracle_recovered.to_json()),
                            ("oracle_lost", t.oracle_lost.to_json()),
                            ("adaptive_recovered", t.adaptive_recovered.to_json()),
                            ("adaptive_lost", t.adaptive_lost.to_json()),
                            ("adaptive_rejected", t.adaptive_rejected.to_json()),
                            ("dominance_violation", t.dominance_violation.to_json()),
                            (
                                "violations",
                                Json::Array(
                                    t.violations.iter().map(|v| v.as_str().to_json()).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn usage() -> ! {
    eprintln!("usage: chaos_soak [--seed S] [--trials N] [--dims N] [--json [PATH]]");
    std::process::exit(2);
}

fn main() {
    let mut cfg = ChaosConfig::smoke(42);
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1).peekable();
    let parse_num = |it: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>| {
        it.next().and_then(|s| s.parse::<u64>().ok()).unwrap_or_else(|| usage())
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => cfg.seed = parse_num(&mut args),
            "--trials" => cfg.trials = parse_num(&mut args) as usize,
            "--dims" => cfg.dims = parse_num(&mut args) as u32,
            "--json" => {
                json_path = Some(match args.peek() {
                    Some(p) if !p.starts_with("--") => {
                        std::path::PathBuf::from(args.next().unwrap())
                    }
                    _ => std::path::PathBuf::from("CHAOS_SOAK.json"),
                });
            }
            _ => usage(),
        }
    }

    println!(
        "chaos_soak: {} trials on Q_{}, seed {} (even trials static fail-stop, odd dynamic)",
        cfg.trials, cfg.dims, cfg.seed
    );
    let report = run_chaos(&cfg);
    for t in &report.trials {
        println!(
            "  trial {:3} [{}]: faults={} events={} corrupting={} | packets {}d/{}l/{}c | \
             worms {}l/{}c | oracle {}r/{}l | adaptive {}r/{}l ({} rejected){}{}",
            t.trial,
            if t.static_fail_stop { "static " } else { "dynamic" },
            t.initial_faults,
            t.events,
            t.corrupting_links,
            t.packet_delivered,
            t.packet_lost,
            t.packet_corrupted,
            t.worm_lost,
            t.worm_corrupted,
            t.oracle_recovered,
            t.oracle_lost,
            t.adaptive_recovered,
            t.adaptive_lost,
            t.adaptive_rejected,
            if t.dominance_violation { " [adaptive beat oracle]" } else { "" },
            if t.violations.is_empty() { "" } else { " VIOLATIONS" },
        );
        for v in &t.violations {
            println!("    !! {v}");
        }
    }
    println!(
        "\n{} trials, {} invariant violations, {} informational dominance inversions",
        report.trials.len(),
        report.violations,
        report.dominance_violations
    );

    if let Some(path) = json_path {
        let rendered = report_to_json(&report).render_pretty();
        std::fs::write(&path, rendered).unwrap_or_else(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(2);
        });
        println!("report written to {}", path.display());
    }

    if !report.ok() {
        eprintln!("chaos_soak: invariant violations detected");
        std::process::exit(1);
    }
}
