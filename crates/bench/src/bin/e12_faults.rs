//! E12 — fault tolerance: width-w bundles + (w,k) IDA vs a single path.
//!
//! `--trials N` sets the Monte-Carlo trial count per grid point (default
//! 200); `--json [PATH]` additionally writes the sweep artifact
//! (`BENCH_E12_FAULTS.json` by default). Every grid point draws its faults
//! from its own ChaCha stream, so the artifact is byte-stable across
//! thread counts.

use hyperpath_bench::experiments::{e12_faults, ida_sanity_line, maybe_write_json, parse_cli};

fn main() {
    let opts = parse_cli(std::env::args().skip(1));
    let trials = opts.trials.unwrap_or(200);
    println!("E12: phase delivery probability under link faults (Monte-Carlo, {trials} trials)");
    println!("Claim (Sections 1-2): w edge-disjoint paths + Rabin IDA tolerate link faults.\n");

    // Demonstrate the IDA machinery end to end once.
    println!("{}\n", ida_sanity_line());

    let (table, out) = e12_faults(&[8, 10], trials, 99);
    println!("{}", table.render());
    println!("'all-paths' = at least one of the w disjoint paths survives per edge (k=1);");
    println!("'IDA' = at least ⌈w/2⌉ survive (bandwidth overhead 2x).");
    maybe_write_json(&out, &opts);
}
