//! E12 — fault tolerance: width-w bundles + (w,k) IDA vs a single path.

use hyperpath_bench::Table;
use hyperpath_core::baseline::gray_cycle_embedding;
use hyperpath_core::cycles::theorem1;
use hyperpath_ida::Ida;
use hyperpath_sim::faults::delivery_probability;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E12: phase delivery probability under link faults (Monte-Carlo, 200 trials)");
    println!("Claim (Sections 1-2): w edge-disjoint paths + Rabin IDA tolerate link faults.\n");

    // Demonstrate the IDA machinery end to end once.
    let ida = Ida::new(5, 3);
    let msg = b"multiple paths tolerate faults";
    let shares = ida.disperse(msg);
    let rec = ida.reconstruct(&shares[2..]).expect("any k shares reconstruct");
    assert_eq!(rec, msg);
    println!(
        "IDA(5,3) sanity: {} bytes -> 5 shares x {} bytes; reconstructed from shares 2..5: ok\n",
        msg.len(),
        shares[0].data.len()
    );

    let mut t = Table::new(&["n", "p(link fail)", "gray (w=1)", "multipath all-paths", "IDA k=⌈w/2⌉"]);
    let mut rng = StdRng::seed_from_u64(99);
    for n in [8u32, 10] {
        let gray = gray_cycle_embedding(n);
        let t1 = theorem1(n).expect("theorem 1");
        let w = t1.claimed_width;
        for p in [0.0005f64, 0.002, 0.01, 0.05] {
            let d_gray = delivery_probability(&gray, p, 1, 200, &mut rng);
            let d_any = delivery_probability(&t1.embedding, p, 1, 200, &mut rng);
            let d_ida = delivery_probability(&t1.embedding, p, w.div_ceil(2), 200, &mut rng);
            t.row(vec![
                n.to_string(),
                format!("{p}"),
                format!("{d_gray:.3}"),
                format!("{d_any:.3}"),
                format!("{d_ida:.3}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!("'all-paths' = at least one of the w disjoint paths survives per edge (k=1);");
    println!("'IDA' = at least ⌈w/2⌉ survive (bandwidth overhead 2x).");
}
