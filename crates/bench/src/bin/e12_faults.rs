//! E12 — fault tolerance: width-w bundles + (w,k) IDA vs a single path.
//!
//! `--trials N` sets the Monte-Carlo trial count per grid point (default
//! 200); `--dims N[,N...]` picks the dimensions to sweep (default `8,10`;
//! this binary materializes embeddings, so it is for `n <= 12` — use
//! `e18_scale` beyond that); `--json [PATH]` additionally writes the sweep
//! artifact (`BENCH_E12_FAULTS.json` by default). Every grid point draws
//! its faults from its own ChaCha stream, so the artifact is byte-stable
//! across thread counts.
//!
//! The `struct` columns count surviving paths combinatorially; the `sim`
//! columns actually disperse a message per guest edge, push the shares as
//! packets through the faulty simulated machine, and reconstruct at the
//! destination — both evaluated against the *same* fault draw per trial.

use hyperpath_bench::experiments::{e12_faults, ida_sanity_line, maybe_write_json, parse_cli_with};

fn main() {
    let opts = parse_cli_with(true, true);
    let trials = opts.trials.unwrap_or(200);
    let dims = opts.dims.clone().unwrap_or_else(|| vec![8, 10]);
    println!("E12: phase delivery probability under link faults (Monte-Carlo, {trials} trials)");
    println!("Claim (Sections 1-2): w edge-disjoint paths + Rabin IDA tolerate link faults.\n");

    // Demonstrate the IDA machinery end to end once.
    println!("{}\n", ida_sanity_line());

    let (table, out) = e12_faults(&dims, trials, 99);
    println!("{}", table.render());
    println!("'struct k' = trials where every bundle keeps >= k fault-free paths;");
    println!("'sim' = shares routed through the faulty machine and IDA-reconstructed");
    println!("(k = \u{2308}w/2\u{2309}), without / with retries over the surviving paths.");
    maybe_write_json(&out, &opts);
}
