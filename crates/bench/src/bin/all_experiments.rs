//! Runs every experiment binary in sequence and prints a combined report —
//! the one-command regeneration of the paper's entire evaluation.
//!
//! `cargo run -p hyperpath-bench --release --bin all_experiments`
//!
//! `--json` is forwarded to every child, so one invocation regenerates
//! every `BENCH_E*.json` artifact (each child writes its own default
//! path; a `--json PATH` argument is rejected here because sixteen
//! children cannot share one file).

use std::process::Command;

fn main() {
    let mut forward: Vec<&str> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => forward.push("--json"),
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!("usage: all_experiments [--json]");
                std::process::exit(2);
            }
        }
    }
    let exps = [
        "e1_cycle_speedup",
        "e2_theorem1",
        "e3_theorem2",
        "e4_lower_bound",
        "e5_grids",
        "e6_squaring",
        "e7_ccc_copies",
        "e8_induced",
        "e9_trees",
        "e10_wormhole",
        "e11_grid_mapping",
        "e12_faults",
        "e13_relaxation",
        "e14_large_copy",
        "e15_pinout",
        "e16_adaptive",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for e in exps {
        println!("\n{}\n== {e} ==\n", "=".repeat(78));
        let out = Command::new(dir.join(e))
            .args(&forward)
            .output()
            .unwrap_or_else(|err| panic!("failed to run {e}: {err}"));
        print!("{}", String::from_utf8_lossy(&out.stdout));
        if !out.status.success() {
            eprintln!("{e} FAILED:\n{}", String::from_utf8_lossy(&out.stderr));
            std::process::exit(1);
        }
    }
    println!("\nAll {} experiments completed.", exps.len());
}
