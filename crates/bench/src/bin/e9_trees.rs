//! E9 — Theorem 5 and Section 6.2: binary tree embeddings.
//!
//! `--json [PATH]` additionally writes both tables as a sweep artifact
//! (`BENCH_E9_TREES.json` by default).

use hyperpath_bench::experiments::{maybe_write_json, parse_cli, tables_output};
use hyperpath_bench::Table;
use hyperpath_core::trees::{arbitrary_tree, cbt_naive_widened, theorem5};
use hyperpath_embedding::metrics::multi_path_metrics;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = parse_cli(false);
    println!("E9a: Theorem 5 — CBT_(2n) in Q_2n (claim: width n, O(1) load, O(1) cost)\n");
    let mut t = Table::new(&["n", "host", "tree", "width", "load", "cost", "naive-ablation cost"]);
    for n in [2u32, 3, 4, 5, 6] {
        let r = theorem5(n).expect("construction");
        let m = multi_path_metrics(&r.embedding);
        let naive = cbt_naive_widened(2 * n).expect("ablation");
        t.row(vec![
            n.to_string(),
            format!("Q_{}", 2 * n),
            format!("CBT_{}", 2 * n),
            r.width.to_string(),
            m.load.to_string(),
            r.cost.to_string(),
            naive.cost.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("The naive single-cube widening is exactly linear (5L-4); the two-factor layout");
    println!("stays far below it. Residual growth reflects our substitute for the paper's [4]");
    println!("black box (random automorph collisions) — discussed in EXPERIMENTS.md.\n");

    println!("E9b: Section 6.2 — arbitrary binary trees (claim: cost O(log n))\n");
    let mut t2 = Table::new(&["tree size", "CBT levels", "width", "cost", "cost/levels"]);
    let mut rng = StdRng::seed_from_u64(2026);
    for size in [15u32, 63, 255, 1023] {
        let tree = hyperpath_guests::random_binary_tree(size, &mut rng);
        let r = arbitrary_tree(&tree).expect("construction");
        let levels = 32 - size.leading_zeros();
        t2.row(vec![
            size.to_string(),
            levels.to_string(),
            r.width.to_string(),
            r.cost.to_string(),
            format!("{:.1}", r.cost as f64 / f64::from(levels)),
        ]);
    }
    println!("{}", t2.render());
    maybe_write_json(
        &tables_output("e9_trees", &[("theorem5", &t), ("arbitrary_trees", &t2)]),
        &opts,
    );
}
