//! E5 — Corollary 1: multi-dimensional grid/torus embeddings.
//!
//! `--json [PATH]` additionally writes the table as a sweep artifact
//! (`BENCH_E5_GRIDS.json` by default).

use hyperpath_bench::experiments::{maybe_write_json, parse_cli, tables_output};
use hyperpath_bench::Table;
use hyperpath_core::grids::grid_embedding;
use hyperpath_embedding::metrics::multi_path_metrics;

fn main() {
    let opts = parse_cli(false);
    println!("E5: Corollary 1 — k-axis tori with sides 2^a (claim: width ⌊a/2⌋, cost 3, expansion ≤ k+1)\n");
    let mut t = Table::new(&[
        "axes (log2 sides)",
        "host dims",
        "width",
        "cost",
        "expansion",
        "dirs",
        "load",
    ]);
    let cases: Vec<(Vec<u32>, bool)> = vec![
        (vec![4, 4], false),
        (vec![4, 4], true),
        (vec![5, 5], false),
        (vec![4, 4, 4], false),
        (vec![5, 4], false),
        (vec![3, 3, 3, 3], false),
        (vec![6, 6], false),
    ];
    for (axes, bidir) in cases {
        let g = grid_embedding(&axes, bidir).expect("construction");
        let m = multi_path_metrics(&g.embedding);
        t.row(vec![
            format!("{axes:?}"),
            g.embedding.host.dims().to_string(),
            g.width.to_string(),
            g.cost.to_string(),
            format!("{:.2}", m.expansion),
            if bidir { "both".into() } else { "fwd".into() },
            m.load.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Directed tori certify cost 3 (the paper's claim); bidirectional phases double it");
    println!("(both directions' first edges contend — measured, see grids.rs docs).");
    maybe_write_json(&tables_output("e5_grids", &[("grids", &t)]), &opts);
}
