//! E3 — Theorem 2: load-2 embeddings and full link utilization.
//!
//! `--json [PATH]` additionally writes the table as a sweep artifact
//! (`BENCH_E3_THEOREM2.json` by default).

use hyperpath_bench::experiments::{maybe_write_json, parse_cli, tables_output};
use hyperpath_bench::Table;
use hyperpath_core::cycles::{theorem2, Theorem2Variant};
use hyperpath_embedding::metrics::multi_path_metrics;

fn main() {
    let opts = parse_cli(false);
    println!("E3: Theorem 2 across n and variants (claim table of Section 4.3)\n");
    let mut t = Table::new(&[
        "n",
        "n mod 4",
        "variant",
        "width",
        "cost",
        "load",
        "utilization",
        "hops=3|E_dir|?",
    ]);
    for n in 4..=13u32 {
        for (v, name) in
            [(Theorem2Variant::Cost3, "cost3"), (Theorem2Variant::FullWidth, "fullwidth")]
        {
            if n % 4 <= 1 && matches!(v, Theorem2Variant::FullWidth) {
                continue; // identical to cost3 for these residues
            }
            let r = theorem2(n, v).expect("construction");
            let m = multi_path_metrics(&r.embedding);
            let host = r.embedding.host;
            let hops: usize = r.embedding.all_paths().map(|(_, _, p)| p.len()).sum();
            t.row(vec![
                n.to_string(),
                (n % 4).to_string(),
                name.into(),
                r.claimed_width.to_string(),
                r.cost.to_string(),
                m.load.to_string(),
                format!("{:.3}", m.utilization),
                (hops as u64 == 3 * host.num_directed_edges()).to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("n ≡ 0 (mod 4): utilization 1.0 and exactly 3·|directed links| path-hops —");
    println!("every link busy in every one of the 3 steps, as the paper claims.");
    maybe_write_json(&tables_output("e3_theorem2", &[("theorem2", &t)]), &opts);
}
