//! Perf-regression gate: reruns the perf suite and compares it against a
//! committed baseline.
//!
//! ```text
//! bench_gate [--baseline <path>] [--time-tolerance <x>] [--out <path>]
//!            [--tiny] [--bless] [--bless-append]
//! ```
//!
//! * `--baseline <path>` — baseline artifact (default
//!   `crates/bench/baselines/perf_baseline.json`).
//! * `--time-tolerance <x>` — wall-clock slowdown band (default 25.0;
//!   `0` disables every wall-clock check, including the kernel speedup
//!   floors below). Deterministic counters are always compared exactly.
//! * `--out <path>` — also write the fresh artifact (for CI upload).
//! * `--tiny` — seconds-scale suite (for smoke runs against a tiny
//!   baseline; the committed baseline is full-size).
//! * `--bless` — overwrite the baseline with the fresh run instead of
//!   comparing.
//! * `--bless-append` — append only the benchmarks the baseline has never
//!   seen; existing records keep their blessed values byte-for-byte, so
//!   the baseline diff shows additions only. Use when the suite grows.
//!
//! Besides the baseline comparison, a compare run also enforces the
//! cross-record **speedup floors** ([`check_speedups`]): the bit-sliced
//! Monte-Carlo kernel and the word-level IDA codec must keep beating
//! their scalar references inside the same fresh run (skipped under
//! `--tiny`, whose microsecond workloads sit below the floors'
//! calibration size and measure scheduler noise) — and the
//! **memory-scaling pins** ([`check_memory`]): every implicit-host scale
//! workload must stay under the 1 GiB peak-allocation ceiling with
//! bytes-per-node non-increasing in `n`. The memory pins are
//! deterministic-counter checks, so they run even under
//! `--time-tolerance 0`.
//!
//! Exit codes: `0` pass/blessed, `1` regression found, `2` usage error or
//! unusable baseline.

use hyperpath_bench::gate::{
    append_new_records, check_memory, check_speedups, compare, GateConfig,
};
use hyperpath_bench::perf::{run_perf_suite, PerfConfig};
use hyperpath_bench::Json;
use std::path::PathBuf;
use std::process::ExitCode;

// Live allocation counters for this binary; see perf_suite.rs for why
// this is guarded against the library-level feature.
#[cfg(not(feature = "counting-alloc"))]
#[global_allocator]
static COUNTING_ALLOC: hyperpath_bench::CountingAlloc = hyperpath_bench::CountingAlloc;

const USAGE: &str = "usage: bench_gate [--baseline <path>] [--time-tolerance <x>] [--out <path>] [--tiny] [--bless] [--bless-append]";

fn default_baseline() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/perf_baseline.json"))
}

fn main() -> ExitCode {
    let mut baseline_path = default_baseline();
    let mut cfg = GateConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut perf_cfg = PerfConfig::full();
    let mut tiny = false;
    let mut bless = false;
    let mut bless_append = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |flag: &str| -> Result<String, ExitCode> {
            args.next().ok_or_else(|| {
                eprintln!("bench_gate: {flag} needs a value\n{USAGE}");
                ExitCode::from(2)
            })
        };
        match arg.as_str() {
            "--baseline" => match take("--baseline") {
                Ok(p) => baseline_path = PathBuf::from(p),
                Err(c) => return c,
            },
            "--time-tolerance" => match take("--time-tolerance") {
                Ok(v) => match v.parse::<f64>() {
                    Ok(t) if t.is_finite() && t >= 0.0 => cfg.time_tolerance = t,
                    _ => {
                        eprintln!(
                            "bench_gate: --time-tolerance needs a finite ratio >= 0\n{USAGE}"
                        );
                        return ExitCode::from(2);
                    }
                },
                Err(c) => return c,
            },
            "--out" => match take("--out") {
                Ok(p) => out = Some(PathBuf::from(p)),
                Err(c) => return c,
            },
            "--tiny" => {
                perf_cfg = PerfConfig::tiny();
                tiny = true;
            }
            "--bless" => bless = true,
            "--bless-append" => bless_append = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bench_gate: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    assert!(
        hyperpath_bench::counting_allocator_installed(),
        "counting allocator must be live in the gate binary"
    );
    eprintln!("bench_gate: running perf suite...");
    let suite = run_perf_suite(&perf_cfg);
    let fresh = suite.to_json();

    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, fresh.render_pretty()) {
            eprintln!("bench_gate: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("bench_gate: wrote fresh artifact to {}", path.display());
    }

    if bless {
        if let Some(dir) = baseline_path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("bench_gate: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, fresh.render_pretty()) {
            eprintln!("bench_gate: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("blessed baseline: {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "bench_gate: cannot read baseline {}: {e}\n(run `bench_gate --bless` to create one)",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let mut baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_gate: baseline {} is not valid JSON: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    if bless_append {
        let added = match append_new_records(&mut baseline, &fresh) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&baseline_path, baseline.render_pretty()) {
            eprintln!("bench_gate: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        if added.is_empty() {
            println!("blessed baseline unchanged: no new benchmarks");
        } else {
            println!("appended {} new benchmark(s) to {}:", added.len(), baseline_path.display());
            for name in added {
                println!("  + {name}");
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    match compare(&baseline, &fresh, &cfg) {
        Ok(report) => {
            print!("{}", report.render());
            failed |= !report.passed();
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    }

    // Cross-record speedup floors (kernel vs scalar-reference pairs inside
    // the fresh run). Wall-clock based, so they obey the same switch that
    // disables the slowdown band: `--time-tolerance 0` = counters only.
    // The floors are calibrated against the full-size workloads; `--tiny`
    // runs sit an order of magnitude below that, where the measured ratio
    // is scheduler noise, so the tiny smoke skips them.
    if tiny && cfg.time_tolerance > 0.0 {
        println!("speedup floors skipped: --tiny workloads are below calibration size");
    } else if cfg.time_tolerance > 0.0 {
        match check_speedups(&fresh) {
            Ok(report) => {
                if report.time_checks > 0 || !report.passed() {
                    if report.passed() {
                        println!(
                            "speedup floors OK: {} kernel/reference pair(s)",
                            report.time_checks
                        );
                    } else {
                        print!("{}", report.render());
                    }
                }
                failed |= !report.passed();
            }
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // Memory-scaling pins on the fresh run: peak bytes are deterministic
    // counters, so these run unconditionally.
    match check_memory(&fresh) {
        Ok(report) => {
            if report.records_checked > 0 || !report.passed() {
                if report.passed() {
                    println!(
                        "memory pins OK: {} scale record(s), {} ceiling/trend check(s)",
                        report.records_checked, report.counters_checked
                    );
                } else {
                    print!("{}", report.render());
                }
            }
            failed |= !report.passed();
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
