//! E19 — multi-tenant saturation on the shared implicit host.
//!
//! Sweeps the number of tenants sharing one implicit `Q_20` host (1M
//! nodes, never materialized): each tenant embeds a guest — Theorem 1
//! cycle, Theorem 2 load-2 cycle, Gray-coded grid, or binomial spanning
//! tree — into a `Q_8` window, and the `sim::tenants` engine runs ledger
//! admission, congestion-aware path-subset selection down to the IDA
//! threshold, and batched packet-engine phases per window group.
//!
//! Counts above 4 pile tenants into shared windows, so the sweep walks
//! from an uncontended host to ledger saturation. `--threads N` pins the
//! worker pool for the round-parallel group phases; `--json [PATH]`
//! additionally writes the sweep artifact (`BENCH_E19_SATURATION.json` by
//! default). The artifact is byte-identical at any `--threads` /
//! `RAYON_NUM_THREADS` value (CI's `tenants-scaling` job compares runs
//! at 1, 2 and 4 workers).

use hyperpath_bench::experiments::{
    e19_saturation_with_threads, maybe_write_json, parse_cli_for, CliAccepts,
};

fn main() {
    let opts = parse_cli_for(CliAccepts { seed: true, threads: true, ..CliAccepts::default() });
    let seed = opts.seed.unwrap_or(1990);
    let counts = [2u32, 4, 6, 8, 10, 12];
    println!("E19: multi-tenant saturation on a shared implicit Q_20 host");
    println!("Tenants (cycles, grids, trees) admit width-w bundles through a link ledger");
    println!("at capacity 2; contended requests degrade to the IDA threshold or requeue.\n");

    let (table, out) = e19_saturation_with_threads(&counts, seed, opts.threads);
    println!("{}", table.render());
    println!("'tput' = delivered messages per machine step; 'jain' = Jain fairness index");
    println!("over per-tenant deliveries; 'cong' = measured max cumulative link load vs");
    println!("'bound' = the counting lower bound \u{2308}slots / (n \u{b7} 2^(n-1))\u{2309}, gap = cong - bound.");
    maybe_write_json(&out, &opts);
}
