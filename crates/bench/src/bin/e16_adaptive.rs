//! E16 — oracle-free adaptive delivery vs the omniscient oracle.
//!
//! `--trials N` sets the Monte-Carlo trial count per grid point (default
//! 100); `--json [PATH]` additionally writes the sweep artifact
//! (`BENCH_E16_ADAPTIVE.json` by default). Every grid point draws its
//! plans from its own ChaCha stream, so the artifact is byte-stable across
//! thread counts.
//!
//! Both protocols face the *same* randomized fault plan per trial. The
//! oracle's retry planner reads the plan's hazard set; the adaptive sender
//! learns path health only from ACK/NACK feedback on keyed tagged shares.
//! Against static fail-stop adversaries the `equal outcomes` column must
//! read 1.000 — the oracle's knowledge buys nothing there (pinned by
//! `tests/adaptive_conformance.rs`).

use hyperpath_bench::experiments::{e16_adaptive, maybe_write_json, parse_cli};

fn main() {
    let opts = parse_cli(true);
    let trials = opts.trials.unwrap_or(100);
    println!("E16: oracle-free adaptive delivery vs the omniscient oracle ({trials} trials)");
    println!("Claim: ACK/NACK feedback + keyed tagged shares recover everything the");
    println!("fault-oracle pipeline recovers, without ever reading the fault set.\n");

    let (table, out) = e16_adaptive(&[8, 10], trials, 1616);
    println!("{}", table.render());
    println!("'equal outcomes' = trials where adaptive and oracle graded every guest");
    println!("edge identically; 'rejected' = shares that arrived but failed their");
    println!("keyed fingerprint (corruption observed as erasure); 'wrong bytes' = 0");
    println!("means no reconstruction ever silently produced a wrong message.");
    maybe_write_json(&out, &opts);
}
