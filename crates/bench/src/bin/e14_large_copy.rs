//! E14 — Corollary 3 and Lemma 9: large-copy embeddings.
//!
//! `--json [PATH]` additionally writes the table as a sweep artifact
//! (`BENCH_E14_LARGE_COPY.json` by default).

use hyperpath_bench::experiments::{maybe_write_json, parse_cli, tables_output};
use hyperpath_bench::Table;
use hyperpath_core::large_copy::{large_copy_ccc_like, large_copy_cycle, CcLike};
use hyperpath_embedding::metrics::multi_path_metrics;
use hyperpath_embedding::validate::validate_multi_path;

fn main() {
    let opts = parse_cli(false);
    println!(
        "E14: large-copy embeddings (claims: cycle dil 1/cong 1; CCC cong 1; FFT/BF cong 2)\n"
    );
    let mut t = Table::new(&[
        "guest",
        "n",
        "vertices",
        "load",
        "dilation",
        "congestion",
        "utilization",
        "valid",
    ]);
    for n in [4u32, 6, 8] {
        let e = large_copy_cycle(n).expect("Corollary 3");
        let m = multi_path_metrics(&e);
        let ok = validate_multi_path(&e, 1, Some(n as usize)).is_ok();
        t.row(vec![
            format!("C_{}", e.guest.num_vertices()),
            n.to_string(),
            e.guest.num_vertices().to_string(),
            m.load.to_string(),
            m.dilation.to_string(),
            m.congestion.to_string(),
            format!("{:.2}", m.utilization),
            ok.to_string(),
        ]);
    }
    for kind in [CcLike::Ccc, CcLike::Butterfly, CcLike::Fft] {
        for n in [4u32, 6] {
            let e = large_copy_ccc_like(kind, n).expect("Lemma 9");
            let m = multi_path_metrics(&e);
            let ok = validate_multi_path(&e, 1, Some(n as usize + 1)).is_ok();
            t.row(vec![
                e.guest.name().to_string(),
                n.to_string(),
                e.guest.num_vertices().to_string(),
                m.load.to_string(),
                m.dilation.to_string(),
                m.congestion.to_string(),
                format!("{:.2}", m.utilization),
                ok.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    maybe_write_json(&tables_output("e14_large_copy", &[("large_copy", &t)]), &opts);
}
