//! Runs the perf suite and writes the schema-versioned `BENCH_PERF.json`
//! artifact (plus a human-readable table on stdout).
//!
//! ```text
//! perf_suite [--out <path>] [--tiny]
//! ```
//!
//! * `--out <path>` — artifact destination (default `BENCH_PERF.json`).
//! * `--tiny` — seconds-scale configuration for smoke runs.

use hyperpath_bench::perf::{run_perf_suite, PerfConfig};
use std::path::PathBuf;
use std::process::ExitCode;

// Installs the counting global allocator for this binary, so the
// `alloc_calls` / `alloc_bytes` counters are live. When the library
// feature already installs it workspace-wide, installing a second one
// here would be a duplicate-lang-item error — hence the cfg guard.
#[cfg(not(feature = "counting-alloc"))]
#[global_allocator]
static COUNTING_ALLOC: hyperpath_bench::CountingAlloc = hyperpath_bench::CountingAlloc;

const USAGE: &str = "usage: perf_suite [--out <path>] [--tiny]";

fn main() -> ExitCode {
    let mut out = PathBuf::from("BENCH_PERF.json");
    let mut cfg = PerfConfig::full();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("perf_suite: --out needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--tiny" => cfg = PerfConfig::tiny(),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("perf_suite: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    assert!(
        hyperpath_bench::counting_allocator_installed(),
        "counting allocator must be live in the perf binary"
    );
    let suite = run_perf_suite(&cfg);
    print!("{}", suite.render_table());
    let body = suite.to_json().render_pretty();
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("perf_suite: cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}
