//! E21 — chaos-hardened multi-tenant service under random fault plans.
//!
//! Sweeps a link-cut probability × tenant-count grid on a shared `Q_10`
//! host: each point draws a seed-pinned static fail-stop
//! `TenantFaultPlan`, then runs the fault-aware `sim::tenants` engine
//! with ledger-learned quarantine — batched packet-engine phases, ACK/
//! NACK health learning, congestion-aware re-routing down to the IDA
//! threshold, and the retry-with-backoff queue. Columns report delivery,
//! recoveries (with mean rounds-to-recover), losses, throughput, Jain
//! fairness, and quarantined links.
//!
//! `--threads N` pins the worker pool for the round-parallel group
//! phases; `--json [PATH]` additionally writes the sweep artifact
//! (`BENCH_E21_CHAOS_TENANTS.json` by default). The artifact is
//! byte-identical at any `--threads` / `RAYON_NUM_THREADS` value (CI's
//! `tenants-scaling` job compares runs at 1, 2 and 4 workers).

use hyperpath_bench::experiments::{
    e21_chaos_tenants_with_threads, maybe_write_json, parse_cli_for, CliAccepts,
};

fn main() {
    let opts = parse_cli_for(CliAccepts { seed: true, threads: true, ..CliAccepts::default() });
    let seed = opts.seed.unwrap_or(1990);
    let rates = [0.0, 0.02, 0.05];
    let counts = [2u32, 4, 8];
    println!("E21: chaos-hardened multi-tenant service on a shared Q_10 host (seed {seed})");
    println!("Random link cuts at rate p; the ledger learns link health from phase ACK/NACKs,");
    println!("quarantines suspects with aged re-admission, and fault-failed tenants retry");
    println!("with bounded backoff instead of being dropped.\n");

    let (table, out) = e21_chaos_tenants_with_threads(&rates, &counts, seed, opts.threads);
    println!("{}", table.render());
    println!("'recovered' = messages delivered only via the retry-with-backoff queue;");
    println!("'recover' = mean rounds from first issue to eventual delivery; 'quar' =");
    println!("links the ledger quarantined; 'tput'/'jain' as in E19.");
    maybe_write_json(&out, &opts);
}
