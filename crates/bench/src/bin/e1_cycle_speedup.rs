//! E1 — Section 2 illustration: m-packet cycle communication.
//!
//! Paper claim: the classical Gray-code embedding needs ≥ m/2 steps (and
//! realizes m); the multiple-path embedding needs Θ(m/n). We simulate one
//! phase of the 2^n-cycle with m packets per edge under both embeddings.

use hyperpath_bench::Table;
use hyperpath_core::baseline::gray_cycle_embedding;
use hyperpath_core::cycles::theorem1;
use hyperpath_sim::PacketSim;

fn main() {
    println!("E1: m-packet cycle phase, Gray code vs Theorem 1 (Section 2)\n");
    let mut t = Table::new(&[
        "n", "m", "gray steps", "free-run multipath", "scheduled multipath", "speedup", "m/2 bound",
    ]);
    for n in [6u32, 8, 10, 12, 14] {
        let gray = gray_cycle_embedding(n);
        let t1 = theorem1(n).expect("theorem 1");
        for m in [u64::from(n) / 2, u64::from(n), 4 * u64::from(n), 16 * u64::from(n)] {
            let g = PacketSim::phase_workload(&gray, m).run(10_000_000).makespan;
            let w = PacketSim::phase_workload(&t1.embedding, m).run(10_000_000).makespan;
            // Repeating the certified schedule back-to-back ships `packets`
            // packets every `cost` steps with zero conflicts.
            let sched = t1.cost * m.div_ceil(t1.packets);
            let best = w.min(sched);
            t.row(vec![
                n.to_string(),
                m.to_string(),
                g.to_string(),
                w.to_string(),
                sched.to_string(),
                format!("{:.2}x", g as f64 / best as f64),
                (m / 2).to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Expectation: gray = m exactly; multipath ≈ 3m/⌊n/2⌋ + O(1); speedup grows ~linearly in n.");
}
