//! E1 — Section 2 illustration: m-packet cycle communication.
//!
//! Paper claim: the classical Gray-code embedding needs ≥ m/2 steps (and
//! realizes m); the multiple-path embedding needs Θ(m/n). We simulate one
//! phase of the 2^n-cycle with m packets per edge under both embeddings.
//!
//! `--json [PATH]` additionally writes the sweep artifact
//! (`BENCH_E1_CYCLE_SPEEDUP.json` by default).

use hyperpath_bench::experiments::{e1_cycle_speedup, maybe_write_json, parse_cli};

fn main() {
    let opts = parse_cli(false);
    println!("E1: m-packet cycle phase, Gray code vs Theorem 1 (Section 2)\n");
    let (table, out) = e1_cycle_speedup(&[6, 8, 10, 12, 14]);
    println!("{}", table.render());
    println!(
        "Expectation: gray = m exactly; multipath ≈ 3m/⌊n/2⌋ + O(1); speedup grows ~linearly in n."
    );
    maybe_write_json(&out, &opts);
}
