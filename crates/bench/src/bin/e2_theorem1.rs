//! E2 — Theorem 1: width-⌊n/2⌋ load-1 cycle embeddings, certified cost 3.
//!
//! `--json [PATH]` additionally writes the table as a sweep artifact
//! (`BENCH_E2_THEOREM1.json` by default).

use hyperpath_bench::experiments::{maybe_write_json, parse_cli, tables_output, theorem1_table};

fn main() {
    let opts = parse_cli(false);
    println!("E2: Theorem 1 across n (claim: width ⌊n/2⌋, ⌊n/2⌋-packet cost 3, load 1)\n");
    let t = theorem1_table(4..=16);
    println!("{}", t.render());
    println!("Cost 3 whenever 2⌊n/4⌋ is a power of two (the paper's implicit assumption);");
    println!("n=12..15 (2k=6) certify cost 4 via the phase-aligned scheduler — see DESIGN.md.");
    maybe_write_json(&tables_output("e2_theorem1", &[("theorem1", &t)]), &opts);
}
