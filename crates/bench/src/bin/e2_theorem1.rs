//! E2 — Theorem 1: width-⌊n/2⌋ load-1 cycle embeddings, certified cost 3.

use hyperpath_bench::Table;
use hyperpath_core::cycles::theorem1;
use hyperpath_embedding::metrics::multi_path_metrics;
use hyperpath_embedding::validate::validate_multi_path;

fn main() {
    println!("E2: Theorem 1 across n (claim: width ⌊n/2⌋, ⌊n/2⌋-packet cost 3, load 1)\n");
    let mut t = Table::new(&[
        "n", "claimed width", "packets", "certified cost", "natural?", "load", "dilation", "valid",
    ]);
    for n in 4..=16u32 {
        let r = theorem1(n).expect("construction");
        let ok = validate_multi_path(&r.embedding, r.claimed_width, Some(1)).is_ok();
        let m = multi_path_metrics(&r.embedding);
        t.row(vec![
            n.to_string(),
            r.claimed_width.to_string(),
            r.packets.to_string(),
            r.cost.to_string(),
            if r.natural_schedule_ok { "yes".into() } else { "no (aligned)".into() },
            m.load.to_string(),
            m.dilation.to_string(),
            ok.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Cost 3 whenever 2⌊n/4⌋ is a power of two (the paper's implicit assumption);");
    println!("n=12..15 (2k=6) certify cost 4 via the phase-aligned scheduler — see DESIGN.md.");
}
