//! E2 — Theorem 1: width-⌊n/2⌋ load-1 cycle embeddings, certified cost 3.

use hyperpath_bench::experiments::theorem1_table;

fn main() {
    println!("E2: Theorem 1 across n (claim: width ⌊n/2⌋, ⌊n/2⌋-packet cost 3, load 1)\n");
    println!("{}", theorem1_table(4..=16).render());
    println!("Cost 3 whenever 2⌊n/4⌋ is a power of two (the paper's implicit assumption);");
    println!("n=12..15 (2k=6) certify cost 4 via the phase-aligned scheduler — see DESIGN.md.");
}
