//! E7 — Theorem 3: n CCC copies at edge-congestion 2, plus the Section 5.3
//! ablations.

use hyperpath_bench::experiments::{butterfly_copies_table, ccc_copies_table};

fn main() {
    println!(
        "E7: Theorem 3 CCC copies in Q_(n+log n) (claim: congestion 2, dilation 1) + ablations\n"
    );
    println!("{}", ccc_copies_table(&[4, 8, 16]).render());
    println!("Section 5.4 transfer — n butterfly copies via CCC (dilation 2, congestion ≤ 4):\n");
    println!("{}", butterfly_copies_table(&[4, 8]).render());
}
