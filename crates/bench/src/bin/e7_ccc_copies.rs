//! E7 — Theorem 3: n CCC copies at edge-congestion 2, plus the Section 5.3
//! ablations.
//!
//! `--json [PATH]` additionally writes both tables as a sweep artifact
//! (`BENCH_E7_CCC_COPIES.json` by default).

use hyperpath_bench::experiments::{
    butterfly_copies_table, ccc_copies_table, maybe_write_json, parse_cli, tables_output,
};

fn main() {
    let opts = parse_cli(false);
    println!(
        "E7: Theorem 3 CCC copies in Q_(n+log n) (claim: congestion 2, dilation 1) + ablations\n"
    );
    let ccc = ccc_copies_table(&[4, 8, 16]);
    println!("{}", ccc.render());
    println!("Section 5.4 transfer — n butterfly copies via CCC (dilation 2, congestion ≤ 4):\n");
    let bf = butterfly_copies_table(&[4, 8]);
    println!("{}", bf.render());
    maybe_write_json(
        &tables_output("e7_ccc_copies", &[("ccc_copies", &ccc), ("butterfly_copies", &bf)]),
        &opts,
    );
}
