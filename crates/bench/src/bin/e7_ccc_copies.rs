//! E7 — Theorem 3: n CCC copies at edge-congestion 2, plus the Section 5.3
//! ablations.

use hyperpath_bench::Table;
use hyperpath_core::ccc_copies::{butterfly_multi_copy, ccc_multi_copy_with, WindowStrategy};
use hyperpath_embedding::metrics::multi_copy_metrics;
use hyperpath_embedding::validate::validate_multi_copy;

fn main() {
    println!("E7: Theorem 3 CCC copies in Q_(n+log n) (claim: congestion 2, dilation 1) + ablations\n");
    let mut t = Table::new(&["n", "strategy", "copies", "dilation", "edge congestion", "n/r", "valid"]);
    for n in [4u32, 8, 16] {
        let r = n.trailing_zeros();
        for (strat, name) in [
            (WindowStrategy::Overlapping, "overlapping (Thm 3)"),
            (WindowStrategy::SameForAll, "same windows"),
            (WindowStrategy::Disjoint, "disjoint windows"),
        ] {
            if n == 16 && strat != WindowStrategy::Overlapping {
                continue; // keep the big ablations short
            }
            let c = ccc_multi_copy_with(n, strat).expect("construction");
            let ok = validate_multi_copy(&c.multi_copy).is_ok();
            let m = multi_copy_metrics(&c.multi_copy);
            t.row(vec![
                n.to_string(),
                name.into(),
                c.multi_copy.num_copies().to_string(),
                m.dilation.to_string(),
                m.edge_congestion.to_string(),
                (n / r).to_string(),
                ok.to_string(),
            ]);
        }
    }
    println!("{}", t.render());

    println!("Section 5.4 transfer — n butterfly copies via CCC (dilation 2, congestion ≤ 4):\n");
    let mut t2 = Table::new(&["n", "copies", "dilation", "edge congestion"]);
    for n in [4u32, 8] {
        let mc = butterfly_multi_copy(n).expect("construction");
        let m = multi_copy_metrics(&mc);
        t2.row(vec![
            n.to_string(),
            mc.num_copies().to_string(),
            m.dilation.to_string(),
            m.edge_congestion.to_string(),
        ]);
    }
    println!("{}", t2.render());
}
