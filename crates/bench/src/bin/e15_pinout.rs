//! E15 — Section 1's constant-pinout comparison: a narrow-channel hypercube
//! simulating a wide-channel grid with O(1) slowdown, while crushing the
//! grid on low-diameter (tree) patterns.

use hyperpath_bench::experiments::{maybe_write_json, parse_cli, tables_output};
use hyperpath_bench::Table;
use hyperpath_core::grids::grid_embedding;
use hyperpath_core::trees::theorem5;
use hyperpath_sim::PacketSim;

fn main() {
    let opts = parse_cli(false);
    println!("E15: constant-pinout model — W = 64 pins per node, B = 512 bytes per neighbor.");
    println!("Grid: 4 channels of width W/4 → B/(W/4) steps per phase.");
    println!("Hypercube: 2a channels of width W/(2a) → more packets, but the width-⌊a/2⌋");
    println!("bundles ship ⌊a/2⌋+1 of them every 3 steps. Claim: O(1) slowdown for all sizes.\n");
    let mut t = Table::new(&[
        "a",
        "nodes",
        "grid phase",
        "cube phase (scheduled)",
        "slowdown",
        "cube tree-phase",
        "grid tree diameter",
    ]);
    let w_pins = 64u64;
    let b_bytes = 512u64;
    for a in [4u32, 6, 8] {
        let n_nodes = 1u64 << (2 * a);
        let grid_steps = b_bytes / (w_pins / 4);
        let packets = b_bytes / (w_pins / (2 * u64::from(a)));
        let g = grid_embedding(&[a, a], false).expect("torus");
        let free = PacketSim::phase_workload(&g.embedding, packets).run(100_000_000).makespan;
        let sched = g.cost * packets.div_ceil(g.width as u64 + 1);
        let cube_steps = free.min(sched);
        // Tree pattern: one CBT phase on the cube (O(1)-cost Theorem 5
        // embedding) vs the grid's diameter lower bound for root-leaf flows.
        let t5 = theorem5(a).expect("tree");
        let tree_steps = PacketSim::phase_workload(&t5.embedding, 4).run(100_000_000).makespan;
        let grid_diameter = 2 * ((1u64 << a) - 1);
        t.row(vec![
            a.to_string(),
            n_nodes.to_string(),
            grid_steps.to_string(),
            cube_steps.to_string(),
            format!("{:.2}x", cube_steps as f64 / grid_steps as f64),
            tree_steps.to_string(),
            grid_diameter.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Grid-phase slowdown stays a small constant as the machine grows (the paper's");
    println!("O(1)-slowdown claim); tree phases beat the grid's Ω(N)-diameter floor badly.");
    maybe_write_json(&tables_output("e15_pinout", &[("pinout", &t)]), &opts);
}
