//! E18 — structural fault estimators at million-node scale.
//!
//! Re-runs the E12 structural columns (`gray_w1` / `struct_k1` /
//! `struct_k_half`) on the implicit host layer, where nothing `O(n·2^n)`
//! is ever allocated: Theorem 1 bundles come from a closed-form
//! [`hyperpath_topology::Theorem1Plan`] and fault trials are recomputed
//! per link from a seed, so `n = 20` (1M nodes) runs in megabytes.
//!
//! `--dims N[,N...]` picks the dimensions (default `8,12,16,20`);
//! `--trials N` the Monte-Carlo trials per grid point (default 128);
//! `--json [PATH]` additionally writes the sweep artifact
//! (`BENCH_E18_SCALE.json` by default). Block seeds are drawn serially
//! per grid point and all folds commute, so the artifact is
//! byte-identical at any `RAYON_NUM_THREADS` (CI's `scale-smoke` job
//! compares two runs).

use hyperpath_bench::experiments::{e18_scale, maybe_write_json, parse_cli_with};

fn main() {
    let opts = parse_cli_with(true, true);
    let trials = opts.trials.unwrap_or(128);
    let dims = opts.dims.clone().unwrap_or_else(|| vec![8, 12, 16, 20]);
    println!("E18: structural delivery estimators on the implicit host ({trials} trials)");
    println!("Claim (Theorem 1): width-⌊n/2⌋ bundles survive faults that kill single paths,");
    println!("evaluated here without materializing the embedding (n = 20 is 1M nodes).\n");

    let (table, out) = e18_scale(&dims, trials, 1807);
    println!("{}", table.render());
    println!("'gray (w=1)' = trials where every Gray-cycle guest edge's single host link");
    println!("survives; 'struct k' = trials where every Theorem-1 bundle keeps >= k");
    println!("fault-free paths (k = \u{2308}w/2\u{2309} is the IDA reconstruction threshold).");
    maybe_write_json(&out, &opts);
}
