//! E22 — thread scaling of the pooled multi-tenant engine.
//!
//! Runs one fixed workload — eight guests across the four `Q_8` windows
//! of a shared `Q_16` host — to completion under pinned worker pools of
//! 1, 2, 4 and 8 threads, timing the round-parallel group phases. The
//! table reports median wall time, speedup over the single-thread
//! baseline, and the determinism claim: every report is byte-identical
//! to the serial run (asserted, not just printed).
//!
//! `--threads N` pins a single additional thread count to the axis;
//! `--seed N` re-seeds the workload; `--json [PATH]` writes the sweep
//! artifact (`BENCH_E22_THREAD_SCALING.json` by default). Wall times are
//! machine telemetry — do not byte-compare this artifact across runs.

use hyperpath_bench::experiments::{
    e22_thread_scaling, maybe_write_json, parse_cli_for, CliAccepts, E22_THREADS,
};

fn main() {
    let opts = parse_cli_for(CliAccepts { seed: true, threads: true, ..CliAccepts::default() });
    let seed = opts.seed.unwrap_or(1990);
    let mut counts: Vec<usize> = E22_THREADS.to_vec();
    if let Some(t) = opts.threads {
        if !counts.contains(&t) {
            counts.push(t);
        }
    }
    println!("E22: thread scaling of the pooled tenant engine (seed {seed})");
    println!("Eight guests in the four Q_8 windows of a shared Q_16 host; each round's");
    println!("disjoint group phases fan out across the worker pool and merge back in");
    println!("fixed group order, so every row below is byte-identical traffic.\n");

    let (table, out) = e22_thread_scaling(&counts, seed);
    println!("{}", table.render());
    println!("'identical' = report equals the single-thread run (asserted); wall/speedup");
    println!("are machine telemetry and vary run to run.");
    maybe_write_json(&out, &opts);
}
