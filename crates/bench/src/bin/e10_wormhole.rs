//! E10 — Section 7: wormhole routing of M-packet permutations; single path
//! vs n-way CCC-copy splitting.
//!
//! `--json [PATH]` additionally writes the sweep artifact
//! (`BENCH_E10_WORMHOLE.json` by default). Every grid point draws its
//! permutation from its own ChaCha stream, so the artifact is byte-stable
//! across thread counts.

use hyperpath_bench::experiments::{e10_wormhole, maybe_write_json, parse_cli};

fn main() {
    let opts = parse_cli(false);
    println!("E10: M-flit permutation routing, wormhole mode (Section 7)");
    println!("Claim: single-path completion grows ~ n·M under contention; splitting each");
    println!("message across the n CCC copies completes in O(M).\n");
    let (table, out) = e10_wormhole(&[4, 8], 7);
    println!("{}", table.render());
    maybe_write_json(&out, &opts);
}
