//! E10 — Section 7: wormhole routing of M-packet permutations; single path
//! vs n-way CCC-copy splitting.

use hyperpath_bench::Table;
use hyperpath_core::ccc_copies::ccc_multi_copy;
use hyperpath_sim::routing::{ecube_path, random_permutation, CccRouter};
use hyperpath_sim::{Worm, WormholeSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E10: M-flit permutation routing, wormhole mode (Section 7)");
    println!("Claim: single-path completion grows ~ n·M under contention; splitting each");
    println!("message across the n CCC copies completes in O(M).\n");
    let mut t = Table::new(&["n (CCC)", "host", "M flits", "single-path", "ccc-split", "ratio"]);
    let mut rng = StdRng::seed_from_u64(7);
    for n in [4u32, 8] {
        let copies = ccc_multi_copy(n).expect("Theorem 3");
        let host = copies.multi_copy.host;
        let router = CccRouter::new(&copies);
        let perm = random_permutation(&host, &mut rng);
        for m_flits in [16u64, 64, 256] {
            // Single path: the whole message as one worm on the e-cube path.
            let mut single = WormholeSim::new(host);
            for (src, &dst) in perm.iter().enumerate() {
                let src = src as u64;
                if src == dst {
                    continue;
                }
                single.add_worm(Worm { path: ecube_path(src, dst), flits: m_flits });
            }
            let r1 = single.run(10_000_000).makespan;
            // Split: n worms of M/n flits along the CCC copy routes.
            let mut split = WormholeSim::new(host);
            let piece = (m_flits / u64::from(n)).max(1);
            for (src, &dst) in perm.iter().enumerate() {
                let src = src as u64;
                if src == dst {
                    continue;
                }
                for route in router.routes(src, dst) {
                    split.add_worm(Worm { path: route, flits: piece });
                }
            }
            let r2 = split.run(10_000_000).makespan;
            t.row(vec![
                n.to_string(),
                format!("Q_{}", host.dims()),
                m_flits.to_string(),
                r1.to_string(),
                r2.to_string(),
                format!("{:.2}x", r1 as f64 / r2 as f64),
            ]);
        }
    }
    println!("{}", t.render());
}
