//! E6 — Corollary 2: unequal-sided grids via squaring.
//!
//! `--json [PATH]` additionally writes the table as a sweep artifact
//! (`BENCH_E6_SQUARING.json` by default).

use hyperpath_bench::experiments::{maybe_write_json, parse_cli, tables_output};
use hyperpath_bench::Table;
use hyperpath_core::grids::squared_grid_embedding;
use hyperpath_embedding::metrics::multi_path_metrics;

fn main() {
    let opts = parse_cli(false);
    println!("E6: Corollary 2 — arbitrary-sided grids squared then embedded (claim: O(1) expansion & cost)\n");
    let mut t = Table::new(&[
        "sides",
        "squared",
        "grid dilation",
        "host dims",
        "width",
        "cost",
        "emb dilation",
        "expansion",
    ]);
    for sides in [vec![5u32, 5], vec![3, 17], vec![6, 10], vec![6, 10, 3], vec![7, 9]] {
        let (map, g) = squared_grid_embedding(&sides, true).expect("construction");
        let m = multi_path_metrics(&g.embedding);
        t.row(vec![
            format!("{sides:?}"),
            format!("{:?}", map.to.sides()),
            map.dilation().to_string(),
            g.embedding.host.dims().to_string(),
            g.width.to_string(),
            g.cost.to_string(),
            m.dilation.to_string(),
            format!("{:.2}", m.expansion),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Squaring dilation 2^folds (O(1) for bounded aspect ratio; the cited Kosaraju–Atallah"
    );
    println!("construction achieves O(1) unconditionally — substitution documented in DESIGN.md).");
    maybe_write_json(&tables_output("e6_squaring", &[("squaring", &t)]), &opts);
}
