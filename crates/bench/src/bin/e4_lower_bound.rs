//! E4 — Lemma 3: the width/cost counting bound, and Theorem 2's optimality.
//!
//! `--json [PATH]` additionally writes the table as a sweep artifact
//! (`BENCH_E4_LOWER_BOUND.json` by default).

use hyperpath_bench::experiments::{maybe_write_json, parse_cli, tables_output};
use hyperpath_bench::Table;
use hyperpath_core::bounds::{max_width_for_cost3, verify_lemma3_counting};
use hyperpath_core::cycles::{theorem2, Theorem2Variant};

fn main() {
    let opts = parse_cli(false);
    println!("E4: Lemma 3 counting bound vs achieved widths (load-2 cycles, cost 3)\n");
    let mut t = Table::new(&["n", "bound ⌊n/2⌋", "counting bound", "achieved (cost-3)", "tight?"]);
    for n in 4..=13u32 {
        let r = theorem2(n, Theorem2Variant::Cost3).expect("construction");
        verify_lemma3_counting(n, r.claimed_width as u32, r.cost).expect("bound respected");
        let bound = max_width_for_cost3(n);
        t.row(vec![
            n.to_string(),
            (n / 2).to_string(),
            bound.to_string(),
            r.claimed_width.to_string(),
            (r.claimed_width as u32 == bound).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("n ≡ 0 (mod 4): achieved = counting bound (optimal). Odd n: the printed counting");
    println!("argument leaves one unit of slack above ⌊n/2⌋ (see bounds.rs docs).");
    maybe_write_json(&tables_output("e4_lower_bound", &[("lemma3", &t)]), &opts);
}
