//! E11 — Section 8.3: three ways to map a large grid relaxation.
//!
//! `--json [PATH]` additionally writes the table as a sweep artifact
//! (`BENCH_E11_GRID_MAPPING.json` by default).

use hyperpath_bench::experiments::{maybe_write_json, parse_cli, tables_output};
use hyperpath_bench::Table;
use hyperpath_core::grids::grid_embedding;
use hyperpath_core::large_copy::large_copy_cycle;
use hyperpath_sim::PacketSim;

fn main() {
    let opts = parse_cli(false);
    println!("E11: Section 8.3 — mapping an M×M grid onto N²=2^(2a) processors");
    println!("Approach 1: point-per-process large-copy; Approach 2: blocked multiple-path;");
    println!("Approach 3: blocked large-copy with log N × more processes.\n");
    let mut t = Table::new(&[
        "a (N=2^a)",
        "M/N",
        "total traffic 1",
        "traffic 2",
        "traffic 3",
        "phase steps (2)",
    ]);
    for a in [2u32, 3, 4] {
        for ratio in [4u64, 16, 64] {
            let m_side = (1u64 << a) * ratio;
            // Traffic: boundary exchanges per phase (grid points sent).
            let t1_traffic = 4 * m_side * m_side; // every point to a neighbor processor (worst case)
            let t2_traffic = 4 * m_side * (1u64 << a); // O(M N): block boundaries
            let logn = u64::from(a);
            let t3_traffic = 4 * m_side * (1u64 << a) * logn.max(1); // O(M N log N)
                                                                     // Phase time under approach 2: the 2a-dim torus embedding ships
                                                                     // M/N boundary packets per edge.
            let g = grid_embedding(&[a, a], true).expect("torus");
            let steps = PacketSim::phase_workload(&g.embedding, ratio).run(10_000_000).makespan;
            // Approach 1 sanity: the large-copy cycle exists (its per-phase
            // step count is 1 packet/edge by construction).
            let _ = large_copy_cycle(2 * a).expect("large copy");
            t.row(vec![
                a.to_string(),
                ratio.to_string(),
                t1_traffic.to_string(),
                t2_traffic.to_string(),
                t3_traffic.to_string(),
                steps.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Traffic ratios follow the paper: O(M²) vs O(MN) vs O(MN log N) — the blocked");
    println!("multiple-path mapping minimizes total communication.");
    maybe_write_json(&tables_output("e11_grid_mapping", &[("mappings", &t)]), &opts);
}
