//! E13 — Section 2's grid-relaxation speedup, and where the crossover falls.
//!
//! Per directed guest edge the classical embedding ships 1 packet/step on
//! its dedicated link; the width-w multiple-path embedding ships w packets
//! every 3 steps. The crossover is therefore at w = 3 (axis length 2^6),
//! and the speedup grows as w/3 = ⌊a/2⌋/3 = Θ(log N) beyond it — exactly
//! the paper's Θ(M/N) vs Θ(M/(N log N)) claim, constants included.

use hyperpath_bench::experiments::{maybe_write_json, parse_cli, tables_output};
use hyperpath_bench::Table;
use hyperpath_core::grids::grid_embedding;
use hyperpath_sim::PacketSim;

fn main() {
    let opts = parse_cli(false);
    println!("E13: 2-D torus relaxation phase (directed), M/N packets per edge\n");
    let mut t = Table::new(&[
        "a (side 2^a)",
        "host",
        "axis width",
        "M/N",
        "classical",
        "free-run",
        "scheduled",
        "speedup",
    ]);
    for a in [4u32, 6, 8] {
        let g = grid_embedding(&[a, a], false).expect("torus embedding");
        for ratio in [8u64, 32, 128] {
            if a == 8 && ratio > 32 {
                continue; // keep the big host quick
            }
            let classical = PacketSim::phase_workload_with_width(&g.embedding, ratio, 1)
                .run(100_000_000)
                .makespan;
            let wide = PacketSim::phase_workload(&g.embedding, ratio).run(100_000_000).makespan;
            let sched = g.cost * ratio.div_ceil(g.width as u64 + 1); // +1: direct path rides along
            let best = wide.min(sched);
            t.row(vec![
                a.to_string(),
                format!("Q_{}", 2 * a),
                g.width.to_string(),
                ratio.to_string(),
                classical.to_string(),
                wide.to_string(),
                sched.to_string(),
                format!("{:.2}x", classical as f64 / best as f64),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Crossover at width 3 (a = 6): below it the classical blocked mapping is");
    println!("competitive — as the paper itself concedes in Section 8.3 for small N.");
    maybe_write_json(&tables_output("e13_relaxation", &[("relaxation", &t)]), &opts);
}
