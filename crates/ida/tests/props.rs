//! Property-based tests for the IDA codec.

use hyperpath_ida::Ida;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any k-subset of shares reconstructs any message for any (w, k).
    #[test]
    fn reconstruct_from_any_subset(
        msg in proptest::collection::vec(any::<u8>(), 0..512),
        w in 1u8..12,
        k_off in 0u8..12,
        skip in 0usize..12,
    ) {
        let k = 1 + k_off % w;
        let ida = Ida::new(w, k);
        let shares = ida.disperse(&msg);
        prop_assert_eq!(shares.len(), usize::from(w));
        // Rotate the share list and take the first k.
        let start = skip % shares.len();
        let subset: Vec<_> = (0..usize::from(k))
            .map(|i| shares[(start + i * 7 % shares.len() + i) % shares.len()].clone())
            .collect();
        // Dedup-protect: if index collision happened, fall back to first k.
        let mut idxs: Vec<u8> = subset.iter().map(|s| s.index).collect();
        idxs.sort_unstable();
        idxs.dedup();
        let subset = if idxs.len() == usize::from(k) {
            subset
        } else {
            shares[..usize::from(k)].to_vec()
        };
        prop_assert_eq!(ida.reconstruct(&subset).unwrap(), msg);
    }

    /// Corrupting one byte of one used share changes the reconstruction
    /// (the code is not silently error-correcting) or the message —
    /// reconstruction never panics.
    #[test]
    fn corruption_never_panics(
        msg in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<u8>(),
    ) {
        let ida = Ida::new(4, 2);
        let mut shares = ida.disperse(&msg);
        let mut data = shares[0].data.to_vec();
        let pos = 8 + usize::from(flip) % (data.len() - 8).max(1);
        if pos < data.len() {
            data[pos] ^= 0x5a;
        }
        shares[0].data = data.into();
        let _ = ida.reconstruct(&shares[..2]); // must not panic
    }
}
