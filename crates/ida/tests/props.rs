//! Property-based tests for the IDA codec.

use hyperpath_ida::{Ida, IdaError};
use proptest::prelude::*;

/// A uniform `k`-subset of `0..w` by seeded partial Fisher–Yates: no
/// collisions, no fallback — every subset is a *true* k-subset.
fn k_subset(w: usize, k: usize, mut seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..w).collect();
    for i in 0..k {
        // xorshift64 step per draw.
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let j = i + (seed as usize) % (w - i);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any k-subset of shares reconstructs any message for any (w, k):
    /// the subset is drawn uniformly by Fisher–Yates from a seed, and the
    /// message length sweeps every group-boundary case `0..=4k+3`.
    #[test]
    fn reconstruct_from_any_k_subset(
        w in 1u8..=16,
        k_off in 0u8..16,
        len_off in 0usize..256,
        subset_seed in any::<u64>(),
        byte_seed in any::<u64>(),
    ) {
        let k = 1 + k_off % w;
        let len = len_off % (4 * usize::from(k) + 4); // 0..=4k+3
        let msg: Vec<u8> = (0..len)
            .map(|i| (byte_seed.rotate_left((i % 64) as u32) >> (i % 8)) as u8)
            .collect();
        let ida = Ida::new(w, k);
        let shares = ida.disperse(&msg);
        prop_assert_eq!(shares.len(), usize::from(w));
        let subset: Vec<_> = k_subset(usize::from(w), usize::from(k), subset_seed)
            .into_iter()
            .map(|i| shares[i].clone())
            .collect();
        prop_assert_eq!(ida.reconstruct(&subset).unwrap(), msg);
    }

    /// Dropping any one share from a k-subset makes reconstruction fail
    /// with the typed shortage error — never a panic, never a wrong
    /// message.
    #[test]
    fn k_minus_one_shares_report_shortage(
        w in 2u8..=16,
        k_off in 0u8..16,
        subset_seed in any::<u64>(),
    ) {
        let k = 2 + k_off % (w - 1); // k >= 2 so k-1 >= 1
        let ida = Ida::new(w, k);
        let shares = ida.disperse(b"boundary");
        let mut subset: Vec<_> = k_subset(usize::from(w), usize::from(k), subset_seed)
            .into_iter()
            .map(|i| shares[i].clone())
            .collect();
        subset.pop();
        prop_assert_eq!(
            ida.reconstruct(&subset),
            Err(IdaError::NotEnoughShares { needed: usize::from(k), got: usize::from(k) - 1 })
        );
    }

    /// Corrupting one byte of one used share changes the reconstruction
    /// (the code is not silently error-correcting) or the message —
    /// reconstruction never panics.
    #[test]
    fn corruption_never_panics(
        msg in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<u8>(),
    ) {
        let ida = Ida::new(4, 2);
        let mut shares = ida.disperse(&msg);
        let mut data = shares[0].data.to_vec();
        let pos = 8 + usize::from(flip) % (data.len() - 8).max(1);
        if pos < data.len() {
            data[pos] ^= 0x5a;
        }
        shares[0].data = data.into();
        let _ = ida.reconstruct(&shares[..2]); // must not panic
    }
}
