//! Arithmetic in `GF(2^8)` with the AES reduction polynomial
//! `x^8 + x^4 + x^3 + x + 1` (0x11b), via log/antilog tables built at first
//! use from the generator 3.

use std::ops::{Add, Mul};
use std::sync::OnceLock;

/// An element of `GF(2^8)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gf256(u8);

struct Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for i in 0..255u16 {
            exp[i as usize] = x as u8;
            log[x as usize] = i as u8;
            // multiply x by the generator 3 = x + 1: x*2 ^ x
            let doubled = (x << 1) ^ if x & 0x80 != 0 { 0x11b } else { 0 };
            x = (doubled ^ x) & 0x1ff;
            if x & 0x100 != 0 {
                x ^= 0x11b;
            }
        }
        for i in 255..510 {
            exp[i] = exp[i - 255];
        }
        Tables { log, exp }
    })
}

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);

    /// Wraps a byte.
    #[inline]
    pub fn new(v: u8) -> Self {
        Gf256(v)
    }

    /// The raw byte.
    #[inline]
    pub fn value(self) -> u8 {
        self.0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn inverse(self) -> Gf256 {
        assert!(self.0 != 0, "zero has no inverse");
        let t = tables();
        Gf256(t.exp[255 - usize::from(t.log[usize::from(self.0)])])
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // GF(2^8) addition IS xor
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let t = tables();
        let s = usize::from(t.log[usize::from(self.0)]) + usize::from(t.log[usize::from(rhs.0)]);
        Gf256(t.exp[s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(Gf256::new(0x57) + Gf256::new(0x83), Gf256::new(0xd4));
        assert_eq!(Gf256::new(9) + Gf256::new(9), Gf256::ZERO);
    }

    #[test]
    fn aes_reference_product() {
        // Classic AES example: 0x57 * 0x83 = 0xc1.
        assert_eq!(Gf256::new(0x57) * Gf256::new(0x83), Gf256::new(0xc1));
        assert_eq!(Gf256::new(0x57) * Gf256::ONE, Gf256::new(0x57));
        assert_eq!(Gf256::new(0x57) * Gf256::ZERO, Gf256::ZERO);
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for v in 1..=255u8 {
            let x = Gf256::new(v);
            assert_eq!(x * x.inverse(), Gf256::ONE, "v={v}");
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        for &a in &[1u8, 7, 0x53, 0xca, 0xff] {
            for &b in &[2u8, 0x11, 0x80, 0xfe] {
                let (x, y) = (Gf256::new(a), Gf256::new(b));
                assert_eq!(x * y, y * x);
                for &c in &[3u8, 0x1b] {
                    let z = Gf256::new(c);
                    assert_eq!((x * y) * z, x * (y * z));
                }
            }
        }
    }

    #[test]
    fn distributivity() {
        for &a in &[5u8, 0x63, 0xb2] {
            for &b in &[9u8, 0x2f] {
                for &c in &[0x41u8, 0x99] {
                    let (x, y, z) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
                    assert_eq!(x * (y + z), x * y + x * z);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_inverse_panics() {
        let _ = Gf256::ZERO.inverse();
    }
}
