//! Rabin's Information Dispersal Algorithm (IDA) over `GF(2^8)`.
//!
//! The paper (Sections 1–2) points out that a width-`w` multiple-path
//! embedding can carry Rabin's IDA along its edge-disjoint paths: a message
//! of `|M|` bytes is dispersed into `w` shares of `|M|/k` bytes such that
//! **any** `k` shares reconstruct it — so up to `w - k` of the disjoint
//! paths may fail (or be slow) without losing the message, at a bandwidth
//! overhead of only `w/k`.
//!
//! This implementation uses a systematic Vandermonde-style linear code over
//! the field `GF(2^8)` with the AES polynomial `x^8+x^4+x^3+x+1`: share `i`
//! evaluates the degree-`k-1` polynomial defined by each group of `k`
//! message bytes at the point `α_i`. Reconstruction solves the `k×k`
//! Vandermonde system by Gaussian elimination (fields this small need no
//! cleverness).

mod gf256;

pub use gf256::Gf256;

use bytes::Bytes;

/// A `(w, k)` dispersal scheme: `w` shares, any `k` reconstruct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ida {
    w: u8,
    k: u8,
}

/// One share: its evaluation-point index plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Share {
    /// Which of the `w` shares this is (the evaluation point is `x = index`).
    pub index: u8,
    /// `⌈message_len / k⌉` payload bytes (plus the original length header).
    pub data: Bytes,
}

impl Ida {
    /// Creates a `(w, k)` scheme.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ w ≤ 255`.
    pub fn new(w: u8, k: u8) -> Self {
        assert!(k >= 1 && k <= w, "need 1 <= k <= w");
        Ida { w, k }
    }

    /// Total number of shares `w`.
    pub fn shares(&self) -> u8 {
        self.w
    }

    /// Reconstruction threshold `k`.
    pub fn threshold(&self) -> u8 {
        self.k
    }

    /// Disperses `message` into `w` shares.
    pub fn disperse(&self, message: &[u8]) -> Vec<Share> {
        let k = usize::from(self.k);
        let groups = message.len().div_ceil(k);
        let mut shares: Vec<Vec<u8>> = vec![Vec::with_capacity(groups + 8); usize::from(self.w)];
        // Length header (8 bytes LE), replicated into every share.
        for s in &mut shares {
            s.extend_from_slice(&(message.len() as u64).to_le_bytes());
        }
        for g in 0..groups {
            // Coefficients: the g-th group of k message bytes (zero-padded).
            for (i, share) in shares.iter_mut().enumerate() {
                let x = Gf256::new(i as u8);
                // Horner evaluation of Σ c_j x^j.
                let mut acc = Gf256::ZERO;
                for j in (0..k).rev() {
                    let c = message.get(g * k + j).copied().unwrap_or(0);
                    acc = acc * x + Gf256::new(c);
                }
                share.push(acc.value());
            }
        }
        shares
            .into_iter()
            .enumerate()
            .map(|(i, data)| Share { index: i as u8, data: Bytes::from(data) })
            .collect()
    }

    /// Reconstructs the message from any `k` (or more) distinct shares.
    pub fn reconstruct(&self, shares: &[Share]) -> Result<Vec<u8>, String> {
        let k = usize::from(self.k);
        if shares.len() < k {
            return Err(format!("need {k} shares, got {}", shares.len()));
        }
        let picked = &shares[..k];
        let mut seen = [false; 256];
        for s in picked {
            if s.index >= self.w {
                return Err(format!("share index {} out of range", s.index));
            }
            if seen[usize::from(s.index)] {
                return Err(format!("duplicate share index {}", s.index));
            }
            seen[usize::from(s.index)] = true;
        }
        let header = picked[0].data.get(..8).ok_or("share too short")?;
        let msg_len = u64::from_le_bytes(header.try_into().unwrap()) as usize;
        let payload_len = picked[0].data.len() - 8;
        if picked.iter().any(|s| s.data.len() != payload_len + 8) {
            return Err("inconsistent share lengths".into());
        }
        if payload_len * k < msg_len {
            return Err("shares too short for declared message length".into());
        }

        // Invert the k×k Vandermonde system once (Gauss-Jordan), reuse per
        // group.
        let mut a: Vec<Vec<Gf256>> = picked
            .iter()
            .map(|s| {
                let x = Gf256::new(s.index);
                let mut row = Vec::with_capacity(k);
                let mut p = Gf256::ONE;
                for _ in 0..k {
                    row.push(p);
                    p = p * x;
                }
                row
            })
            .collect();
        let mut inv: Vec<Vec<Gf256>> = (0..k)
            .map(|i| (0..k).map(|j| if i == j { Gf256::ONE } else { Gf256::ZERO }).collect())
            .collect();
        for col in 0..k {
            let pivot = (col..k)
                .find(|&r| a[r][col] != Gf256::ZERO)
                .ok_or("singular system (duplicate evaluation points?)")?;
            a.swap(col, pivot);
            inv.swap(col, pivot);
            let inv_p = a[col][col].inverse();
            for j in 0..k {
                a[col][j] = a[col][j] * inv_p;
                inv[col][j] = inv[col][j] * inv_p;
            }
            for r in 0..k {
                if r != col && a[r][col] != Gf256::ZERO {
                    let f = a[r][col];
                    for j in 0..k {
                        a[r][j] = a[r][j] + f * a[col][j];
                        inv[r][j] = inv[r][j] + f * inv[col][j];
                    }
                }
            }
        }

        let mut out = vec![0u8; msg_len];
        for g in 0..payload_len {
            for (j, inv_row) in inv.iter().enumerate() {
                let idx = g * k + j;
                if idx >= msg_len {
                    break;
                }
                let mut acc = Gf256::ZERO;
                for (r, s) in picked.iter().enumerate() {
                    acc = acc + inv_row[r] * Gf256::new(s.data[8 + g]);
                }
                out[idx] = acc.value();
            }
        }
        Ok(out)
    }

    /// The bandwidth overhead factor `w / k` (total bytes sent over message
    /// bytes, ignoring the fixed header).
    pub fn overhead(&self) -> f64 {
        f64::from(self.w) / f64::from(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_shares() {
        let ida = Ida::new(5, 3);
        let msg = b"the quick brown fox jumps over the lazy dog";
        let shares = ida.disperse(msg);
        assert_eq!(shares.len(), 5);
        assert_eq!(ida.reconstruct(&shares).unwrap(), msg);
    }

    #[test]
    fn any_k_shares_suffice() {
        let ida = Ida::new(6, 3);
        let msg: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let shares = ida.disperse(&msg);
        // Try several k-subsets.
        for combo in [[0usize, 1, 2], [3, 4, 5], [0, 2, 4], [5, 1, 3]] {
            let subset: Vec<Share> = combo.iter().map(|&i| shares[i].clone()).collect();
            assert_eq!(ida.reconstruct(&subset).unwrap(), msg, "combo {combo:?}");
        }
    }

    #[test]
    fn fewer_than_k_fails() {
        let ida = Ida::new(4, 3);
        let shares = ida.disperse(b"hello");
        assert!(ida.reconstruct(&shares[..2]).is_err());
    }

    #[test]
    fn duplicate_shares_rejected() {
        let ida = Ida::new(4, 2);
        let shares = ida.disperse(b"hello");
        let dup = vec![shares[1].clone(), shares[1].clone()];
        assert!(ida.reconstruct(&dup).is_err());
    }

    #[test]
    fn share_sizes_match_overhead() {
        let ida = Ida::new(8, 4);
        let msg = vec![7u8; 4096];
        let shares = ida.disperse(&msg);
        for s in &shares {
            assert_eq!(s.data.len(), 8 + 1024, "share = len header + |M|/k bytes");
        }
        assert_eq!(ida.overhead(), 2.0);
    }

    #[test]
    fn empty_and_tiny_messages() {
        let ida = Ida::new(3, 2);
        for msg in [&b""[..], b"a", b"ab", b"abc"] {
            let shares = ida.disperse(msg);
            assert_eq!(ida.reconstruct(&shares[1..]).unwrap(), msg);
        }
    }

    #[test]
    fn k_equals_one_is_replication() {
        let ida = Ida::new(3, 1);
        let msg = b"replicate me";
        let shares = ida.disperse(msg);
        for s in &shares {
            let one = vec![s.clone()];
            assert_eq!(ida.reconstruct(&one).unwrap(), msg);
        }
    }
}
