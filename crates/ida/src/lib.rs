//! Rabin's Information Dispersal Algorithm (IDA) over `GF(2^8)`.
//!
//! The paper (Sections 1–2) points out that a width-`w` multiple-path
//! embedding can carry Rabin's IDA along its edge-disjoint paths: a message
//! of `|M|` bytes is dispersed into `w` shares of `|M|/k` bytes such that
//! **any** `k` shares reconstruct it — so up to `w - k` of the disjoint
//! paths may fail (or be slow) without losing the message, at a bandwidth
//! overhead of only `w/k`.
//!
//! This implementation uses a systematic Vandermonde-style linear code over
//! the field `GF(2^8)` with the AES polynomial `x^8+x^4+x^3+x+1`: share `i`
//! evaluates the degree-`k-1` polynomial defined by each group of `k`
//! message bytes at the point `α_i`. Reconstruction solves the `k×k`
//! Vandermonde system by Gaussian elimination (fields this small need no
//! cleverness).

mod gf256;
pub mod kernel;

pub use gf256::Gf256;

use bytes::Bytes;

/// Why [`Ida::reconstruct`] could not rebuild the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdaError {
    /// Fewer than `k` *distinct* shares were provided (duplicates of one
    /// index count once).
    NotEnoughShares {
        /// The scheme's threshold `k`.
        needed: usize,
        /// Distinct in-range shares actually seen.
        got: usize,
    },
    /// A share's index is outside the scheme's `0..w` range.
    IndexOutOfRange {
        /// The offending share index.
        index: u8,
        /// The scheme's share count `w`.
        width: u8,
    },
    /// Two shares carry the same index but different payloads, so at least
    /// one of them is corrupt and neither can be trusted.
    ConflictingDuplicate {
        /// The index the disagreeing shares claim.
        index: u8,
    },
    /// A share is too short to hold the 8-byte message-length header.
    ShareTooShort {
        /// The offending share index.
        index: u8,
    },
    /// The selected shares disagree on payload length.
    InconsistentLengths,
    /// The shares' payloads cannot hold the message length their header
    /// declares.
    DeclaredLengthTooLong {
        /// Message length (bytes) the header claims.
        declared: usize,
        /// Bytes the payloads can actually reconstruct.
        capacity: usize,
    },
}

impl std::fmt::Display for IdaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            IdaError::NotEnoughShares { needed, got } => {
                write!(f, "need {needed} distinct shares, got {got}")
            }
            IdaError::IndexOutOfRange { index, width } => {
                write!(f, "share index {index} out of range for a {width}-share scheme")
            }
            IdaError::ConflictingDuplicate { index } => {
                write!(f, "shares with index {index} carry conflicting payloads")
            }
            IdaError::ShareTooShort { index } => {
                write!(f, "share {index} too short for the length header")
            }
            IdaError::InconsistentLengths => write!(f, "shares have inconsistent payload lengths"),
            IdaError::DeclaredLengthTooLong { declared, capacity } => {
                write!(f, "header declares {declared} bytes but shares only hold {capacity}")
            }
        }
    }
}

impl std::error::Error for IdaError {}

/// A `(w, k)` dispersal scheme: `w` shares, any `k` reconstruct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ida {
    w: u8,
    k: u8,
}

/// One share: its evaluation-point index plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Share {
    /// Which of the `w` shares this is (the evaluation point is `x = index`).
    pub index: u8,
    /// `⌈message_len / k⌉` payload bytes (plus the original length header).
    pub data: Bytes,
}

/// A [`Share`] carrying a keyed fingerprint, so a receiver who knows the
/// key can reject a corrupted share without the original message
/// ([`Ida::verify_share`]) — the classical IDA pairing: corruption
/// degrades to erasure, and any `k` *verified* shares reconstruct.
///
/// The fingerprint is a 64-bit keyed mixing hash
/// ([`share_fingerprint`]), **not** a cryptographic MAC: it detects the
/// simulator's fault model (random byte flips on corrupting links, index
/// mangling) with miss probability `2^-64` per share, but offers no
/// security against an adversary who knows the key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedShare {
    /// The underlying share.
    pub share: Share,
    /// Keyed fingerprint over `(key, index, data)`.
    pub tag: u64,
}

/// SplitMix64 finalizer — the standard 64-bit avalanche permutation.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The keyed fingerprint of one share: absorbs the key, the share index,
/// the payload length, and every 8-byte little-endian lane of the payload
/// through the SplitMix64 permutation. Deterministic across platforms.
pub fn share_fingerprint(key: u64, index: u8, data: &[u8]) -> u64 {
    let mut acc = mix64(key ^ 0x9e37_79b9_7f4a_7c15);
    acc = mix64(acc ^ u64::from(index));
    acc = mix64(acc ^ data.len() as u64);
    let mut chunks = data.chunks_exact(8);
    for lane in &mut chunks {
        acc = mix64(acc ^ u64::from_le_bytes(lane.try_into().unwrap()));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut lane = [0u8; 8];
        lane[..rest.len()].copy_from_slice(rest);
        acc = mix64(acc ^ u64::from_le_bytes(lane));
    }
    acc
}

impl Ida {
    /// Creates a `(w, k)` scheme.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ w ≤ 255`.
    pub fn new(w: u8, k: u8) -> Self {
        assert!(k >= 1 && k <= w, "need 1 <= k <= w");
        Ida { w, k }
    }

    /// Total number of shares `w`.
    pub fn shares(&self) -> u8 {
        self.w
    }

    /// Reconstruction threshold `k`.
    pub fn threshold(&self) -> u8 {
        self.k
    }

    /// Disperses `message` into `w` shares.
    ///
    /// Share `i`'s byte for group `g` is the degree-`k-1` polynomial of
    /// that group evaluated at `x = i`. The evaluation runs on the
    /// word-level kernel ([`kernel`]): the message is de-interleaved into
    /// `k` stride planes and each share accumulates `x^j · plane_j` a
    /// whole row at a time (table-driven multiply; plain `u64` XOR when
    /// the coefficient is 1, so share 1 is XOR-only and `k = 1` is pure
    /// replication). Byte-identical to [`Self::disperse_reference`], the
    /// schoolbook implementation kept as the conformance reference.
    pub fn disperse(&self, message: &[u8]) -> Vec<Share> {
        let k = usize::from(self.k);
        let w = usize::from(self.w);
        let groups = message.len().div_ceil(k);
        let header = (message.len() as u64).to_le_bytes();
        let mut out = Vec::with_capacity(w);
        if k == 1 {
            // Replication: every share is header + message verbatim.
            for i in 0..w {
                let mut data = Vec::with_capacity(8 + message.len());
                data.extend_from_slice(&header);
                data.extend_from_slice(message);
                out.push(Share { index: i as u8, data: Bytes::from(data) });
            }
            return out;
        }
        // Plane j holds the j-th byte of every k-byte group (zero-padded
        // tail), so "coefficient j of every group at once" is one slice.
        let mut planes = vec![vec![0u8; groups]; k];
        for (g, group) in message.chunks(k).enumerate() {
            for (j, &b) in group.iter().enumerate() {
                planes[j][g] = b;
            }
        }
        for i in 0..w {
            // Exact-size buffer: header + one payload byte per group.
            let mut data = vec![0u8; 8 + groups];
            data[..8].copy_from_slice(&header);
            let payload = &mut data[8..];
            let x = Gf256::new(i as u8);
            let mut coeff = Gf256::ONE;
            for plane in &planes {
                kernel::mul_row_acc(payload, plane, coeff.value());
                coeff = coeff * x;
            }
            out.push(Share { index: i as u8, data: Bytes::from(data) });
        }
        out
    }

    /// The schoolbook dispersal: per-byte Horner evaluation through the
    /// log/exp field tables, exactly as originally shipped. Kept (and
    /// benchmarked, `ida/disperse_reference` in the perf suite) as the
    /// conformance reference for [`Self::disperse`]; unit tests pin the
    /// two byte-for-byte.
    pub fn disperse_reference(&self, message: &[u8]) -> Vec<Share> {
        let k = usize::from(self.k);
        let groups = message.len().div_ceil(k);
        let mut shares: Vec<Vec<u8>> = vec![Vec::with_capacity(groups + 8); usize::from(self.w)];
        // Length header (8 bytes LE), replicated into every share.
        for s in &mut shares {
            s.extend_from_slice(&(message.len() as u64).to_le_bytes());
        }
        for g in 0..groups {
            // Coefficients: the g-th group of k message bytes (zero-padded).
            for (i, share) in shares.iter_mut().enumerate() {
                let x = Gf256::new(i as u8);
                // Horner evaluation of Σ c_j x^j.
                let mut acc = Gf256::ZERO;
                for j in (0..k).rev() {
                    let c = message.get(g * k + j).copied().unwrap_or(0);
                    acc = acc * x + Gf256::new(c);
                }
                share.push(acc.value());
            }
        }
        shares
            .into_iter()
            .enumerate()
            .map(|(i, data)| Share { index: i as u8, data: Bytes::from(data) })
            .collect()
    }

    /// Reconstructs the message from any `k` (or more) distinct shares.
    ///
    /// The slice may contain extras and exact duplicates in any order: the
    /// first `k` *distinct* in-range shares are selected. Duplicated
    /// indices are tolerated only while their payloads agree — a
    /// disagreement means corruption and is reported as
    /// [`IdaError::ConflictingDuplicate`].
    pub fn reconstruct(&self, shares: &[Share]) -> Result<Vec<u8>, IdaError> {
        let k = usize::from(self.k);
        let (picked, msg_len, payload_len) = self.select_shares(shares)?;
        let mut out = vec![0u8; msg_len];
        if k == 1 {
            // inv is the 1×1 identity: the selected payload *is* the
            // message.
            out.copy_from_slice(&picked[0].data[8..8 + msg_len]);
            return Ok(out);
        }
        let inv = vandermonde_inverse(&picked, k);
        // plane_j = Σ_r inv[j][r] · payload_r — one kernel row op per
        // (j, r) pair — then re-interleaved into the output at stride k.
        let mut plane = vec![0u8; payload_len];
        for (j, inv_row) in inv.iter().enumerate() {
            if j >= msg_len {
                break; // whole plane lands past the declared length
            }
            plane.fill(0);
            for (r, s) in picked.iter().enumerate() {
                kernel::mul_row_acc(&mut plane, &s.data[8..], inv_row[r].value());
            }
            let mut idx = j;
            for &b in &plane {
                if idx >= msg_len {
                    break;
                }
                out[idx] = b;
                idx += k;
            }
        }
        Ok(out)
    }

    /// The schoolbook reconstruction: per-byte share combination through
    /// the log/exp field tables, exactly as originally shipped (its own
    /// selection and validation included, so its error behavior is frozen
    /// too). Kept as the conformance reference for [`Self::reconstruct`];
    /// unit tests pin the two byte-for-byte, errors included.
    pub fn reconstruct_reference(&self, shares: &[Share]) -> Result<Vec<u8>, IdaError> {
        let k = usize::from(self.k);
        let mut picked: Vec<&Share> = Vec::with_capacity(k);
        let mut seen = [false; 256];
        for s in shares {
            if s.index >= self.w {
                return Err(IdaError::IndexOutOfRange { index: s.index, width: self.w });
            }
            if seen[usize::from(s.index)] {
                if let Some(prev) = picked.iter().find(|p| p.index == s.index) {
                    if prev.data != s.data {
                        return Err(IdaError::ConflictingDuplicate { index: s.index });
                    }
                }
                continue;
            }
            seen[usize::from(s.index)] = true;
            if picked.len() < k {
                picked.push(s);
            }
        }
        if picked.len() < k {
            return Err(IdaError::NotEnoughShares { needed: k, got: picked.len() });
        }
        let header =
            picked[0].data.get(..8).ok_or(IdaError::ShareTooShort { index: picked[0].index })?;
        let msg_len = u64::from_le_bytes(header.try_into().unwrap()) as usize;
        let payload_len = picked[0].data.len() - 8;
        if picked.iter().any(|s| s.data.len() != payload_len + 8) {
            return Err(IdaError::InconsistentLengths);
        }
        if payload_len * k < msg_len {
            return Err(IdaError::DeclaredLengthTooLong {
                declared: msg_len,
                capacity: payload_len * k,
            });
        }

        let inv = vandermonde_inverse(&picked, k);
        let mut out = vec![0u8; msg_len];
        for g in 0..payload_len {
            for (j, inv_row) in inv.iter().enumerate() {
                let idx = g * k + j;
                if idx >= msg_len {
                    break;
                }
                let mut acc = Gf256::ZERO;
                for (r, s) in picked.iter().enumerate() {
                    acc = acc + inv_row[r] * Gf256::new(s.data[8 + g]);
                }
                out[idx] = acc.value();
            }
        }
        Ok(out)
    }

    /// Selects the first `k` distinct in-range shares and validates their
    /// headers; shared by [`Self::reconstruct`] and mirrored verbatim in
    /// [`Self::reconstruct_reference`]. Returns `(picked, msg_len,
    /// payload_len)`.
    fn select_shares<'s>(
        &self,
        shares: &'s [Share],
    ) -> Result<(Vec<&'s Share>, usize, usize), IdaError> {
        let k = usize::from(self.k);
        let mut picked: Vec<&Share> = Vec::with_capacity(k);
        let mut seen = [false; 256];
        for s in shares {
            if s.index >= self.w {
                return Err(IdaError::IndexOutOfRange { index: s.index, width: self.w });
            }
            if seen[usize::from(s.index)] {
                if let Some(prev) = picked.iter().find(|p| p.index == s.index) {
                    if prev.data != s.data {
                        return Err(IdaError::ConflictingDuplicate { index: s.index });
                    }
                }
                continue;
            }
            seen[usize::from(s.index)] = true;
            if picked.len() < k {
                picked.push(s);
            }
        }
        if picked.len() < k {
            return Err(IdaError::NotEnoughShares { needed: k, got: picked.len() });
        }
        let header =
            picked[0].data.get(..8).ok_or(IdaError::ShareTooShort { index: picked[0].index })?;
        let msg_len = u64::from_le_bytes(header.try_into().unwrap()) as usize;
        let payload_len = picked[0].data.len() - 8;
        if picked.iter().any(|s| s.data.len() != payload_len + 8) {
            return Err(IdaError::InconsistentLengths);
        }
        if payload_len * k < msg_len {
            return Err(IdaError::DeclaredLengthTooLong {
                declared: msg_len,
                capacity: payload_len * k,
            });
        }
        Ok((picked, msg_len, payload_len))
    }

    /// [`disperse`](Self::disperse), with each share fingerprinted under
    /// `key` so the receiving side can [`verify_share`](Self::verify_share)
    /// it — the oracle-free delivery protocol's ACK/NACK signal.
    pub fn disperse_tagged(&self, message: &[u8], key: u64) -> Vec<TaggedShare> {
        self.disperse(message)
            .into_iter()
            .map(|share| {
                let tag = share_fingerprint(key, share.index, &share.data);
                TaggedShare { share, tag }
            })
            .collect()
    }

    /// Whether `ts` is a plausible share of this scheme under `key`: its
    /// index is in range and its fingerprint matches its payload. A share
    /// whose bytes were flipped in transit (or whose index was mangled)
    /// fails and must be treated as an erasure.
    pub fn verify_share(&self, key: u64, ts: &TaggedShare) -> bool {
        ts.share.index < self.w && share_fingerprint(key, ts.share.index, &ts.share.data) == ts.tag
    }

    /// The bandwidth overhead factor `w / k` (total bytes sent over message
    /// bytes, ignoring the fixed header).
    pub fn overhead(&self) -> f64 {
        f64::from(self.w) / f64::from(self.k)
    }
}

/// Inverts the `k×k` Vandermonde system of the picked shares' evaluation
/// points by Gauss-Jordan elimination (fields this small need no
/// cleverness). Distinct points — enforced during selection — make the
/// system nonsingular.
fn vandermonde_inverse(picked: &[&Share], k: usize) -> Vec<Vec<Gf256>> {
    let mut a: Vec<Vec<Gf256>> = picked
        .iter()
        .map(|s| {
            let x = Gf256::new(s.index);
            let mut row = Vec::with_capacity(k);
            let mut p = Gf256::ONE;
            for _ in 0..k {
                row.push(p);
                p = p * x;
            }
            row
        })
        .collect();
    let mut inv: Vec<Vec<Gf256>> = (0..k)
        .map(|i| (0..k).map(|j| if i == j { Gf256::ONE } else { Gf256::ZERO }).collect())
        .collect();
    for col in 0..k {
        let pivot = (col..k)
            .find(|&r| a[r][col] != Gf256::ZERO)
            .expect("Vandermonde system with distinct points is nonsingular");
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let inv_p = a[col][col].inverse();
        for j in 0..k {
            a[col][j] = a[col][j] * inv_p;
            inv[col][j] = inv[col][j] * inv_p;
        }
        for r in 0..k {
            if r != col && a[r][col] != Gf256::ZERO {
                let f = a[r][col];
                for j in 0..k {
                    a[r][j] = a[r][j] + f * a[col][j];
                    inv[r][j] = inv[r][j] + f * inv[col][j];
                }
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_shares() {
        let ida = Ida::new(5, 3);
        let msg = b"the quick brown fox jumps over the lazy dog";
        let shares = ida.disperse(msg);
        assert_eq!(shares.len(), 5);
        assert_eq!(ida.reconstruct(&shares).unwrap(), msg);
    }

    #[test]
    fn any_k_shares_suffice() {
        let ida = Ida::new(6, 3);
        let msg: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let shares = ida.disperse(&msg);
        // Try several k-subsets.
        for combo in [[0usize, 1, 2], [3, 4, 5], [0, 2, 4], [5, 1, 3]] {
            let subset: Vec<Share> = combo.iter().map(|&i| shares[i].clone()).collect();
            assert_eq!(ida.reconstruct(&subset).unwrap(), msg, "combo {combo:?}");
        }
    }

    #[test]
    fn fewer_than_k_fails() {
        let ida = Ida::new(4, 3);
        let shares = ida.disperse(b"hello");
        assert_eq!(
            ida.reconstruct(&shares[..2]),
            Err(IdaError::NotEnoughShares { needed: 3, got: 2 })
        );
    }

    #[test]
    fn duplicates_count_once() {
        // Two copies of one share are one share: still short of k = 2.
        let ida = Ida::new(4, 2);
        let shares = ida.disperse(b"hello");
        let dup = vec![shares[1].clone(), shares[1].clone()];
        assert_eq!(ida.reconstruct(&dup), Err(IdaError::NotEnoughShares { needed: 2, got: 1 }));
    }

    #[test]
    fn duplicates_plus_enough_distinct_shares_recover() {
        // Harmless duplicates are skipped; the k distinct shares win.
        let ida = Ida::new(4, 2);
        let msg = b"hello";
        let shares = ida.disperse(msg);
        let noisy =
            vec![shares[1].clone(), shares[1].clone(), shares[3].clone(), shares[3].clone()];
        assert_eq!(ida.reconstruct(&noisy).unwrap(), msg);
    }

    #[test]
    fn conflicting_duplicate_rejected() {
        let ida = Ida::new(4, 2);
        let shares = ida.disperse(b"hello");
        let mut forged = shares[1].clone();
        let mut bytes = forged.data.to_vec();
        bytes[8] ^= 0xff;
        forged.data = Bytes::from(bytes);
        let conflicted = vec![shares[1].clone(), forged, shares[2].clone()];
        assert_eq!(ida.reconstruct(&conflicted), Err(IdaError::ConflictingDuplicate { index: 1 }));
    }

    #[test]
    fn out_of_range_index_rejected() {
        let ida = Ida::new(3, 2);
        let mut shares = ida.disperse(b"hello");
        shares[0].index = 7;
        assert_eq!(ida.reconstruct(&shares), Err(IdaError::IndexOutOfRange { index: 7, width: 3 }));
    }

    #[test]
    fn truncated_share_rejected() {
        let ida = Ida::new(3, 2);
        let mut shares = ida.disperse(b"hello world");
        shares[0].data = Bytes::from(shares[0].data[..4].to_vec());
        assert_eq!(ida.reconstruct(&shares[..2]), Err(IdaError::ShareTooShort { index: 0 }));
        let mut uneven = ida.disperse(b"hello world");
        uneven[1].data = Bytes::from(uneven[1].data[..9].to_vec());
        assert_eq!(ida.reconstruct(&uneven[..2]), Err(IdaError::InconsistentLengths));
    }

    #[test]
    fn errors_display_their_context() {
        let e = IdaError::NotEnoughShares { needed: 3, got: 1 };
        assert_eq!(e.to_string(), "need 3 distinct shares, got 1");
        let e: Box<dyn std::error::Error> = Box::new(IdaError::ConflictingDuplicate { index: 9 });
        assert!(e.to_string().contains("index 9"));
    }

    #[test]
    fn share_sizes_match_overhead() {
        let ida = Ida::new(8, 4);
        let msg = vec![7u8; 4096];
        let shares = ida.disperse(&msg);
        for s in &shares {
            assert_eq!(s.data.len(), 8 + 1024, "share = len header + |M|/k bytes");
        }
        assert_eq!(ida.overhead(), 2.0);
    }

    #[test]
    fn empty_and_tiny_messages() {
        let ida = Ida::new(3, 2);
        for msg in [&b""[..], b"a", b"ab", b"abc"] {
            let shares = ida.disperse(msg);
            assert_eq!(ida.reconstruct(&shares[1..]).unwrap(), msg);
        }
    }

    #[test]
    fn tagged_shares_verify_and_reconstruct() {
        let ida = Ida::new(6, 3);
        let msg: Vec<u8> = (0..200u8).collect();
        let key = 0xfeed_beef_cafe_f00d;
        let tagged = ida.disperse_tagged(&msg, key);
        assert_eq!(tagged.len(), 6);
        assert!(tagged.iter().all(|t| ida.verify_share(key, t)));
        let shares: Vec<Share> = tagged.iter().map(|t| t.share.clone()).collect();
        assert_eq!(ida.reconstruct(&shares).unwrap(), msg);
        // Tagging never changes the underlying share bytes.
        assert_eq!(shares, ida.disperse(&msg));
    }

    #[test]
    fn flipped_payload_byte_fails_verification() {
        let ida = Ida::new(5, 2);
        let key = 42;
        let tagged = ida.disperse_tagged(b"authenticated", key);
        for (pos, flip) in [(0usize, 0x01u8), (8, 0x80), (12, 0xff)] {
            let mut bad = tagged[2].clone();
            let mut bytes = bad.share.data.to_vec();
            bytes[pos] ^= flip;
            bad.share.data = Bytes::from(bytes);
            assert!(!ida.verify_share(key, &bad), "flip at byte {pos} must be caught");
        }
    }

    #[test]
    fn mangled_index_fails_verification() {
        let ida = Ida::new(5, 2);
        let key = 7;
        let tagged = ida.disperse_tagged(b"hello", key);
        // Swapping a share's claimed index (payload intact) is caught.
        let mut bad = tagged[1].clone();
        bad.share.index = 3;
        assert!(!ida.verify_share(key, &bad));
        // As is an out-of-range index even with a forged matching tag.
        let mut oob = tagged[1].clone();
        oob.share.index = 9;
        oob.tag = share_fingerprint(key, 9, &oob.share.data);
        assert!(!ida.verify_share(key, &oob));
    }

    #[test]
    fn wrong_key_fails_verification() {
        let ida = Ida::new(4, 2);
        let tagged = ida.disperse_tagged(b"keyed", 1111);
        assert!(tagged.iter().all(|t| ida.verify_share(1111, t)));
        assert!(tagged.iter().all(|t| !ida.verify_share(2222, t)));
    }

    #[test]
    fn fingerprint_is_a_pure_function_of_key_index_and_bytes() {
        let a = share_fingerprint(5, 2, b"payload bytes");
        assert_eq!(a, share_fingerprint(5, 2, b"payload bytes"));
        assert_ne!(a, share_fingerprint(6, 2, b"payload bytes"));
        assert_ne!(a, share_fingerprint(5, 3, b"payload bytes"));
        assert_ne!(a, share_fingerprint(5, 2, b"payload byteX"));
        // Length is absorbed: a zero-padded extension does not collide.
        assert_ne!(share_fingerprint(5, 2, b"ab"), share_fingerprint(5, 2, b"ab\0"));
        // Lanes past the first also matter (tail handling).
        assert_ne!(
            share_fingerprint(5, 2, b"0123456789abcdef"),
            share_fingerprint(5, 2, b"0123456789abcdeX"),
        );
    }

    #[test]
    fn kernel_codec_matches_schoolbook_reference() {
        let msgs: Vec<Vec<u8>> = vec![
            vec![],
            b"a".to_vec(),
            b"ab".to_vec(),
            (0..=255u8).collect(),
            (0..1000).map(|i| (i * 31 + 7) as u8).collect(),
        ];
        for (w, k) in [(1u8, 1u8), (3, 1), (4, 2), (5, 3), (8, 4), (16, 11), (255, 254)] {
            let ida = Ida::new(w, k);
            for msg in &msgs {
                let fast = ida.disperse(msg);
                let slow = ida.disperse_reference(msg);
                assert_eq!(fast, slow, "disperse w={w} k={k} len={}", msg.len());
                // The last k shares exercise the general (non-systematic)
                // combine on both paths.
                let tail: Vec<Share> = fast[fast.len() - usize::from(k)..].to_vec();
                assert_eq!(
                    ida.reconstruct(&tail),
                    ida.reconstruct_reference(&tail),
                    "reconstruct w={w} k={k} len={}",
                    msg.len()
                );
                assert_eq!(ida.reconstruct(&tail).unwrap(), *msg);
            }
        }
    }

    #[test]
    fn kernel_and_reference_agree_on_errors() {
        let ida = Ida::new(4, 3);
        let shares = ida.disperse(b"hello world");
        // Too few shares.
        assert_eq!(ida.reconstruct(&shares[..2]), ida.reconstruct_reference(&shares[..2]));
        assert!(ida.reconstruct(&shares[..2]).is_err());
        // Out-of-range index.
        let mut oob = shares.clone();
        oob[0].index = 9;
        assert_eq!(ida.reconstruct(&oob), ida.reconstruct_reference(&oob));
        // Conflicting duplicate.
        let mut forged = shares[1].clone();
        let mut bytes = forged.data.to_vec();
        bytes[8] ^= 0xff;
        forged.data = Bytes::from(bytes);
        let conflicted = vec![shares[1].clone(), forged, shares[2].clone(), shares[3].clone()];
        assert_eq!(ida.reconstruct(&conflicted), ida.reconstruct_reference(&conflicted));
        // Truncated header and inconsistent lengths.
        let mut short = shares.clone();
        short[0].data = Bytes::from(short[0].data[..4].to_vec());
        assert_eq!(ida.reconstruct(&short[..3]), ida.reconstruct_reference(&short[..3]));
        let mut uneven = shares.clone();
        uneven[1].data = Bytes::from(uneven[1].data[..9].to_vec());
        assert_eq!(ida.reconstruct(&uneven[..3]), ida.reconstruct_reference(&uneven[..3]));
    }

    #[test]
    fn k_equals_one_is_replication() {
        let ida = Ida::new(3, 1);
        let msg = b"replicate me";
        let shares = ida.disperse(msg);
        for s in &shares {
            let one = vec![s.clone()];
            assert_eq!(ida.reconstruct(&one).unwrap(), msg);
        }
    }
}
