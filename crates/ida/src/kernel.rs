//! Word-level `GF(2^8)` kernels backing [`Ida::disperse`] and
//! [`Ida::reconstruct`].
//!
//! The schoolbook codec multiplies field bytes one at a time through the
//! log/exp tables ([`crate::Gf256`]). Dispersal and reconstruction are
//! really *row* operations though — every payload byte of a share is the
//! same linear combination of message planes — so this module provides
//! the two primitives they reduce to:
//!
//! * [`mul_row_acc`]: `dst ^= c · src` over whole byte rows, driven by a
//!   fully `const`-evaluated 256×256 product table ([`MUL_TABLE`]) — no
//!   `OnceLock`, no runtime initialization, no drift from the log/exp
//!   path (the exhaustive equality test below checks all 65 536 pairs
//!   against an independent shift-and-reduce implementation);
//! * [`xor_row_acc`]: the `c == 1` fast path, eight bytes per `u64` XOR.
//!
//! The scalar codec stays available as [`Ida::disperse_reference`] /
//! [`Ida::reconstruct_reference`]; `crates/ida` unit tests pin the kernel
//! paths against them byte for byte.
//!
//! [`Ida::disperse`]: crate::Ida::disperse
//! [`Ida::reconstruct`]: crate::Ida::reconstruct
//! [`Ida::disperse_reference`]: crate::Ida::disperse_reference
//! [`Ida::reconstruct_reference`]: crate::Ida::reconstruct_reference

/// Carry-less "Russian peasant" product in `GF(2^8)` modulo the AES
/// polynomial `x^8 + x^4 + x^3 + x + 1` — the `const` generator for
/// [`MUL_TABLE`], independent of the log/exp tables.
const fn gf_mul_const(a: u8, b: u8) -> u8 {
    let mut a = a as u16;
    let mut b = b;
    let mut acc: u16 = 0;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= 0x11b;
        }
        b >>= 1;
    }
    acc as u8
}

const fn build_mul_table() -> [[u8; 256]; 256] {
    let mut t = [[0u8; 256]; 256];
    let mut a = 0;
    while a < 256 {
        let mut b = 0;
        while b < 256 {
            t[a][b] = gf_mul_const(a as u8, b as u8);
            b += 1;
        }
        a += 1;
    }
    t
}

/// The full 64 KiB `GF(2^8)` product table, `MUL_TABLE[a][b] = a·b`.
/// Built entirely at compile time, so there is nothing to initialize (and
/// nothing that can drift) at runtime.
pub static MUL_TABLE: [[u8; 256]; 256] = build_mul_table();

/// Table-driven field product of two bytes.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    MUL_TABLE[a as usize][b as usize]
}

/// `dst ^= src`, eight bytes at a time.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn xor_row_acc(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dw, sw) in (&mut d).zip(&mut s) {
        let v =
            u64::from_le_bytes(dw.try_into().unwrap()) ^ u64::from_le_bytes(sw.try_into().unwrap());
        dw.copy_from_slice(&v.to_le_bytes());
    }
    for (db, &sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

/// `dst ^= c · src` over `GF(2^8)`: skipped for `c == 0`, word-level XOR
/// for `c == 1`, and a single hoisted [`MUL_TABLE`] row otherwise.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mul_row_acc(dst: &mut [u8], src: &[u8], c: u8) {
    match c {
        0 => {}
        1 => xor_row_acc(dst, src),
        _ => {
            assert_eq!(dst.len(), src.len(), "row length mismatch");
            let row = &MUL_TABLE[c as usize];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d ^= row[s as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf256;

    /// Yet another independent multiply — shift-and-reduce with the
    /// operands swapped relative to [`gf_mul_const`] — so the exhaustive
    /// test is not comparing an implementation against itself.
    fn gf_mul_shift(a: u8, b: u8) -> u8 {
        let mut acc: u16 = 0;
        let b = b as u16;
        for bit in (0..8).rev() {
            acc <<= 1;
            if acc & 0x100 != 0 {
                acc ^= 0x11b;
            }
            if (a >> bit) & 1 == 1 {
                acc ^= b;
            }
        }
        acc as u8
    }

    #[test]
    fn table_matches_schoolbook_on_all_65536_pairs() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let t = mul(a, b);
                assert_eq!(t, gf_mul_shift(a, b), "table vs shift-reduce at {a}·{b}");
                assert_eq!(
                    t,
                    (Gf256::new(a) * Gf256::new(b)).value(),
                    "table vs log/exp at {a}·{b}"
                );
            }
        }
    }

    #[test]
    fn table_has_field_structure() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul(b, a), "commutativity at {a}·{b}");
            }
        }
    }

    #[test]
    fn row_ops_match_bytewise_math() {
        // Lengths straddling the 8-byte word boundary exercise both the
        // u64 body and the remainder tail.
        for len in [0usize, 1, 7, 8, 9, 16, 37] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for c in [0u8, 1, 2, 0x53, 0xff] {
                let mut dst: Vec<u8> = (0..len).map(|i| (i * 5 + 3) as u8).collect();
                let expect: Vec<u8> = dst.iter().zip(&src).map(|(&d, &s)| d ^ mul(c, s)).collect();
                mul_row_acc(&mut dst, &src, c);
                assert_eq!(dst, expect, "len={len} c={c:#x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn row_ops_reject_length_mismatch() {
        let mut dst = [0u8; 4];
        xor_row_acc(&mut dst, &[0u8; 5]);
    }
}
