//! Word-level `GF(2^8)` kernels backing [`Ida::disperse`] and
//! [`Ida::reconstruct`].
//!
//! The schoolbook codec multiplies field bytes one at a time through the
//! log/exp tables ([`crate::Gf256`]). Dispersal and reconstruction are
//! really *row* operations though — every payload byte of a share is the
//! same linear combination of message planes — so this module provides
//! the two primitives they reduce to:
//!
//! * [`mul_row_acc`]: `dst ^= c · src` over whole byte rows. The body is
//!   **plane-parallel**: the product is built by the bit-sliced polynomial
//!   ladder `c·v = Σ_{j: bit j of c} v·x^j`, selecting each `v·x^j` by a
//!   broadcast mask of the coefficient bit and stopping at `c`'s top set
//!   bit — so the trip count depends only on the (per-call constant)
//!   coefficient, never on the row data. On x86-64 with AVX2 (detected at
//!   runtime) the ladder runs 64 bytes per step across two interleaved
//!   register chains; everywhere else a portable `[u64; 8]` SWAR body
//!   with `xtime8` multiplying eight byte lanes by `x` per word op.
//!   Either way large rows stream at word rates instead of one table
//!   lookup per byte. Tails shorter than a chunk fall back to a hoisted
//!   row of the fully `const`-evaluated 256×256 product table
//!   ([`MUL_TABLE`] — no `OnceLock`, no runtime initialization, no drift
//!   from the log/exp path; the exhaustive equality test below checks all
//!   65 536 pairs against an independent shift-and-reduce
//!   implementation);
//! * [`mul_row_acc_table`]: the pre-ladder table-driven row op, kept as
//!   the perf gate's speedup-floor comparator (`ida/rowops/*` records);
//! * [`xor_row_acc`]: the `c == 1` fast path, eight bytes per `u64` XOR.
//!
//! The scalar codec stays available as [`Ida::disperse_reference`] /
//! [`Ida::reconstruct_reference`]; `crates/ida` unit tests pin the kernel
//! paths against them byte for byte.
//!
//! [`Ida::disperse`]: crate::Ida::disperse
//! [`Ida::reconstruct`]: crate::Ida::reconstruct
//! [`Ida::disperse_reference`]: crate::Ida::disperse_reference
//! [`Ida::reconstruct_reference`]: crate::Ida::reconstruct_reference

/// Carry-less "Russian peasant" product in `GF(2^8)` modulo the AES
/// polynomial `x^8 + x^4 + x^3 + x + 1` — the `const` generator for
/// [`MUL_TABLE`], independent of the log/exp tables.
const fn gf_mul_const(a: u8, b: u8) -> u8 {
    let mut a = a as u16;
    let mut b = b;
    let mut acc: u16 = 0;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= 0x11b;
        }
        b >>= 1;
    }
    acc as u8
}

const fn build_mul_table() -> [[u8; 256]; 256] {
    let mut t = [[0u8; 256]; 256];
    let mut a = 0;
    while a < 256 {
        let mut b = 0;
        while b < 256 {
            t[a][b] = gf_mul_const(a as u8, b as u8);
            b += 1;
        }
        a += 1;
    }
    t
}

/// The full 64 KiB `GF(2^8)` product table, `MUL_TABLE[a][b] = a·b`.
/// Built entirely at compile time, so there is nothing to initialize (and
/// nothing that can drift) at runtime.
pub static MUL_TABLE: [[u8; 256]; 256] = build_mul_table();

/// Table-driven field product of two bytes.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    MUL_TABLE[a as usize][b as usize]
}

/// `dst ^= src`, eight bytes at a time.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn xor_row_acc(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dw, sw) in (&mut d).zip(&mut s) {
        let v =
            u64::from_le_bytes(dw.try_into().unwrap()) ^ u64::from_le_bytes(sw.try_into().unwrap());
        dw.copy_from_slice(&v.to_le_bytes());
    }
    for (db, &sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

/// Low-seven-bits mask of every byte lane of a word.
const LO7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
/// High-bit mask of every byte lane of a word.
const HI1: u64 = 0x8080_8080_8080_8080;

/// Eight parallel `GF(2^8)` multiplications by `x`, one per byte lane:
/// shift each lane left and reduce the lanes that overflowed by the AES
/// polynomial's low byte `0x1b`. Extracting the high bits before the
/// shift keeps the lanes independent — no carry ever crosses a byte
/// boundary (`(hi >> 7) * 0x1b` scatters `0x1b` into exactly the
/// overflowing lanes, and `0x1b < 0x80` cannot collide with a neighbor).
#[inline(always)]
fn xtime8(w: u64) -> u64 {
    ((w & LO7) << 1) ^ ((w & HI1) >> 7).wrapping_mul(0x1b)
}

/// The 256-bit lane of the plane-parallel ladder: AVX2 intrinsics with
/// runtime feature detection, so the default (SSE2-baseline) build still
/// streams 32 bytes per ladder step on any post-2013 x86-64. The portable
/// SWAR body in [`mul_row_acc`] is the fallback and the semantic
/// reference — both compute `c·v = Σ_j select[j] & v·x^j` with the same
/// branch-free select-and-accumulate rounds.
#[cfg(target_arch = "x86_64")]
mod ladder_avx2 {
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// `dst ^= c·src` over whole 32-byte blocks, with the coefficient
    /// pre-expanded into broadcast bit masks (`select[j]` = all-ones iff
    /// bit `j` of `c`) and the ladder depth `rounds` (index of `c`'s top
    /// set bit, plus one) precomputed — the trip count depends only on
    /// the coefficient, never on the data.
    ///
    /// # Safety
    /// Requires AVX2 (callers gate on `is_x86_feature_detected!`), and
    /// `dst.len() == src.len()` with the length a multiple of 32.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_row_acc_blocks(dst: &mut [u8], src: &[u8], select: &[u64; 8], rounds: usize) {
        debug_assert_eq!(dst.len(), src.len());
        debug_assert_eq!(dst.len() % 32, 0);
        debug_assert!((1..=8).contains(&rounds));
        let lo7 = _mm256_set1_epi8(0x7f);
        let hi1 = _mm256_set1_epi8(0x80u8 as i8);
        let red = _mm256_set1_epi8(0x1b);
        let masks: [__m256i; 8] = core::array::from_fn(|j| _mm256_set1_epi64x(select[j] as i64));
        // xtime on 32 byte lanes: shift the low seven bits, scatter the
        // AES reduction byte into the lanes whose high bit overflowed
        // (byte-compare, no multiply).
        let xtime = |pow: __m256i| -> __m256i {
            // SAFETY: same AVX2 requirement as the enclosing function.
            // (Newer toolchains let the closure inherit the target
            // feature and deem the block redundant; older ones need it.)
            #[allow(unused_unsafe)]
            unsafe {
                let over = _mm256_cmpeq_epi8(_mm256_and_si256(pow, hi1), hi1);
                _mm256_xor_si256(
                    _mm256_slli_epi64(_mm256_and_si256(pow, lo7), 1),
                    _mm256_and_si256(over, red),
                )
            }
        };
        // Two independent acc/pow chains per iteration: the seven-step
        // xtime ladder is a serial dependency, so interleaving a second
        // chain roughly doubles throughput.
        let pairs = dst.len() / 64;
        for i in 0..pairs {
            let dp = dst.as_mut_ptr().add(i * 64) as *mut __m256i;
            let sp = src.as_ptr().add(i * 64) as *const __m256i;
            let mut acc0 = _mm256_loadu_si256(dp);
            let mut acc1 = _mm256_loadu_si256(dp.add(1));
            let mut pow0 = _mm256_loadu_si256(sp);
            let mut pow1 = _mm256_loadu_si256(sp.add(1));
            for (j, mask) in masks.iter().enumerate().take(rounds) {
                acc0 = _mm256_xor_si256(acc0, _mm256_and_si256(pow0, *mask));
                acc1 = _mm256_xor_si256(acc1, _mm256_and_si256(pow1, *mask));
                if j + 1 < rounds {
                    pow0 = xtime(pow0);
                    pow1 = xtime(pow1);
                }
            }
            _mm256_storeu_si256(dp, acc0);
            _mm256_storeu_si256(dp.add(1), acc1);
        }
        for i in pairs * 2..dst.len() / 32 {
            let dp = dst.as_mut_ptr().add(i * 32) as *mut __m256i;
            let sp = src.as_ptr().add(i * 32) as *const __m256i;
            let mut acc = _mm256_loadu_si256(dp);
            let mut pow = _mm256_loadu_si256(sp);
            for (j, mask) in masks.iter().enumerate().take(rounds) {
                acc = _mm256_xor_si256(acc, _mm256_and_si256(pow, *mask));
                if j + 1 < rounds {
                    pow = xtime(pow);
                }
            }
            _mm256_storeu_si256(dp, acc);
        }
    }
}

/// `dst ^= c · src` over `GF(2^8)`: skipped for `c == 0`, word-level XOR
/// for `c == 1`, and the plane-parallel polynomial ladder otherwise —
/// select-and-accumulate rounds up to the coefficient's top set bit over
/// wide chunks (AVX2 when the CPU has it, detected at runtime; portable
/// `[u64; 8]` SWAR with `xtime8` everywhere else), with sub-chunk tails
/// falling back to a hoisted [`MUL_TABLE`] row. Byte-identical to
/// [`mul_row_acc_table`] — GF(2^8) has one product — only faster; the
/// perf gate's `ida/rowops/*` floor holds the ladder to ≥ 2x the table
/// path on 64 KiB rows.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mul_row_acc(dst: &mut [u8], src: &[u8], c: u8) {
    match c {
        0 => {}
        1 => xor_row_acc(dst, src),
        _ => {
            assert_eq!(dst.len(), src.len(), "row length mismatch");
            // Broadcast masks of the coefficient bits, hoisted out of the
            // chunk loop: `select[j]` keeps `src·x^j` iff bit `j` of `c`
            // is set. Selecting by mask instead of branching keeps the
            // ladder's inner structure branch-free; the trip count stops
            // at the coefficient's top set bit, which depends only on `c`
            // (a per-call constant), never on the row data.
            let mut select = [0u64; 8];
            for (j, m) in select.iter_mut().enumerate() {
                *m = 0u64.wrapping_sub(u64::from((c >> j) & 1));
            }
            let rounds = 8 - c.leading_zeros() as usize;
            let row = &MUL_TABLE[c as usize];
            #[cfg(target_arch = "x86_64")]
            if is_x86_feature_detected!("avx2") {
                let split = dst.len() - dst.len() % 32;
                // SAFETY: AVX2 just detected; the slices are equal-length
                // multiples of 32 by construction of `split`.
                unsafe {
                    ladder_avx2::mul_row_acc_blocks(
                        &mut dst[..split],
                        &src[..split],
                        &select,
                        rounds,
                    );
                }
                for (db, &sb) in dst[split..].iter_mut().zip(&src[split..]) {
                    *db ^= row[sb as usize];
                }
                return;
            }
            let mut d = dst.chunks_exact_mut(64);
            let mut s = src.chunks_exact(64);
            for (dw, sw) in (&mut d).zip(&mut s) {
                let mut acc = [0u64; 8];
                let mut pow = [0u64; 8];
                for l in 0..8 {
                    acc[l] = u64::from_le_bytes(dw[l * 8..l * 8 + 8].try_into().unwrap());
                    pow[l] = u64::from_le_bytes(sw[l * 8..l * 8 + 8].try_into().unwrap());
                }
                // `c·v = Σ_j select[j] & v·x^j` — one round per ladder
                // step up to the coefficient's top bit (the final round
                // needs no further xtime).
                for (j, &sel) in select.iter().enumerate().take(rounds) {
                    for l in 0..8 {
                        acc[l] ^= pow[l] & sel;
                    }
                    if j + 1 < rounds {
                        for p in &mut pow {
                            *p = xtime8(*p);
                        }
                    }
                }
                for l in 0..8 {
                    dw[l * 8..l * 8 + 8].copy_from_slice(&acc[l].to_le_bytes());
                }
            }
            for (db, &sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
                *db ^= row[sb as usize];
            }
        }
    }
}

/// The table-driven `dst ^= c · src` the plane-parallel ladder replaced:
/// one hoisted [`MUL_TABLE`] row, one lookup-XOR per byte. Kept public as
/// the speedup-floor comparator (`ida/rowops/table/*` perf records) and
/// as the sub-chunk tail of [`mul_row_acc`].
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mul_row_acc_table(dst: &mut [u8], src: &[u8], c: u8) {
    match c {
        0 => {}
        1 => xor_row_acc(dst, src),
        _ => {
            assert_eq!(dst.len(), src.len(), "row length mismatch");
            let row = &MUL_TABLE[c as usize];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d ^= row[s as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf256;

    /// Yet another independent multiply — shift-and-reduce with the
    /// operands swapped relative to [`gf_mul_const`] — so the exhaustive
    /// test is not comparing an implementation against itself.
    fn gf_mul_shift(a: u8, b: u8) -> u8 {
        let mut acc: u16 = 0;
        let b = b as u16;
        for bit in (0..8).rev() {
            acc <<= 1;
            if acc & 0x100 != 0 {
                acc ^= 0x11b;
            }
            if (a >> bit) & 1 == 1 {
                acc ^= b;
            }
        }
        acc as u8
    }

    #[test]
    fn table_matches_schoolbook_on_all_65536_pairs() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let t = mul(a, b);
                assert_eq!(t, gf_mul_shift(a, b), "table vs shift-reduce at {a}·{b}");
                assert_eq!(
                    t,
                    (Gf256::new(a) * Gf256::new(b)).value(),
                    "table vs log/exp at {a}·{b}"
                );
            }
        }
    }

    #[test]
    fn table_has_field_structure() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul(b, a), "commutativity at {a}·{b}");
            }
        }
    }

    #[test]
    fn row_ops_match_bytewise_math() {
        // Lengths straddling the chunk boundaries exercise the wide
        // ladder body, the word XOR, and the remainder tail.
        for len in [0usize, 1, 7, 8, 9, 16, 31, 32, 33, 37, 64, 95] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for c in [0u8, 1, 2, 0x53, 0xff] {
                let mut dst: Vec<u8> = (0..len).map(|i| (i * 5 + 3) as u8).collect();
                let expect: Vec<u8> = dst.iter().zip(&src).map(|(&d, &s)| d ^ mul(c, s)).collect();
                mul_row_acc(&mut dst, &src, c);
                assert_eq!(dst, expect, "len={len} c={c:#x}");
            }
        }
    }

    #[test]
    fn xtime8_multiplies_every_lane_by_x() {
        for b in 0..=255u8 {
            let w = u64::from_le_bytes([b, b ^ 0x5a, 0, 1, 0x80, 0x7f, b.wrapping_add(1), 0xff]);
            let got = xtime8(w).to_le_bytes();
            for (lane, &x) in w.to_le_bytes().iter().enumerate() {
                assert_eq!(got[lane], mul(x, 2), "lane {lane} of xtime8({x:#x})");
            }
        }
    }

    #[test]
    fn ladder_matches_table_row_op_for_every_constant() {
        // 100 bytes = three 32-byte blocks plus a 4-byte tail; every
        // constant exercises a different ladder depth/bit pattern.
        let src: Vec<u8> = (0..100).map(|i| (i * 73 + 29) as u8).collect();
        let base: Vec<u8> = (0..100).map(|i| (i * 17 + 5) as u8).collect();
        for c in 0..=255u8 {
            let mut plane = base.clone();
            let mut table = base.clone();
            mul_row_acc(&mut plane, &src, c);
            mul_row_acc_table(&mut table, &src, c);
            assert_eq!(plane, table, "ladder vs table at c={c:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn row_ops_reject_length_mismatch() {
        let mut dst = [0u8; 4];
        xor_row_acc(&mut dst, &[0u8; 5]);
    }
}
