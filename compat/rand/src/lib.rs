//! Offline compatibility shim for the `rand` crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the handful of `rand` APIs the workspace uses are
//! implemented locally: [`RngCore`]/[`Rng`]/[`RngExt`], [`SeedableRng`],
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — like upstream,
//! the `StdRng` algorithm is explicitly unspecified and may change), and
//! [`seq::SliceRandom`].
//!
//! Determinism contract: for a fixed seed every generator in this crate
//! produces a platform-independent stream, which is all the workspace
//! relies on (reproducible experiments, frozen Hamiltonian searches,
//! Monte-Carlo trials keyed by per-trial seeds).

/// Core random number generation: a source of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker trait for generators usable in `&mut impl Rng` bounds.
pub trait Rng: RngCore {}
impl<R: RngCore + ?Sized> Rng for R {}

/// Convenience sampling methods (upstream `rand` folds these into `Rng`).
pub trait RngExt: Rng {
    /// A uniformly random value of a primitive type.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive integer ranges).
    fn random_range<T, R: UniformRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (`0.0 ≤ p ≤ 1.0`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard [0, 1) construction.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}
impl<R: Rng + ?Sized> RngExt for R {}

/// Types samplable uniformly over their whole domain via [`RngExt::random`].
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer ranges samplable via [`RngExt::random_range`].
pub trait UniformRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by rejection (no modulo bias). `span = 0`
/// means the full 2^64 domain.
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Largest multiple of `span` that fits; reject draws above it.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl UniformRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_range!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_range_signed {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl UniformRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                start.wrapping_add(uniform_u64(rng, span.wrapping_add(1)) as $t)
            }
        }
    )*};
}
impl_uniform_range_signed!(i8, i16, i32, i64, isize);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (stable across
    /// platforms and releases of this shim).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let chunk = sm.next().to_le_bytes();
            let take = chunk.len().min(bytes.len() - i);
            bytes[i..i + take].copy_from_slice(&chunk[..take]);
            i += take;
        }
        Self::from_seed(seed)
    }

    /// Seeds from another generator.
    fn from_rng(rng: &mut impl RngCore) -> Self {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// SplitMix64: the canonical seed expander.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's default deterministic generator: xoshiro256++.
    /// (Upstream leaves the `StdRng` algorithm unspecified; only
    /// seed-determinism is relied upon.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is the one forbidden xoshiro fixed point.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on empty slices).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0usize..=5);
            assert!(w <= 5);
            let s: i32 = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
