//! Offline compatibility shim for `criterion`.
//!
//! A minimal wall-clock bench runner with the same macro surface
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter`). No statistical analysis or HTML reports — each bench
//! warms up, runs batches until a time budget is spent, and prints the
//! best observed mean iteration time (the low-noise point estimate).

use std::time::{Duration, Instant};

/// The bench registry/driver.
pub struct Criterion {
    warmup: Duration,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warmup: Duration::from_millis(300), budget: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { warmup: self.warmup, budget: self.budget, best_ns: f64::INFINITY };
        f(&mut b);
        println!("{name:<48} {:>14}/iter", format_ns(b.best_ns));
        self
    }
}

/// Passed to each bench target; call [`iter`](Bencher::iter) with the body.
pub struct Bencher {
    warmup: Duration,
    budget: Duration,
    best_ns: f64,
}

impl Bencher {
    /// Measures `body`, keeping the best batch-mean iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Warm up and size batches so one batch is ~10ms.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.warmup {
            std::hint::black_box(body());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((10_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);
        let run = Instant::now();
        while run.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(body());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Prevents the optimizer from discarding a value (re-export of the std
/// hint; upstream criterion's version predates its stabilization).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group: a function invoking each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c =
            Criterion { warmup: Duration::from_millis(5), budget: Duration::from_millis(10) };
        c.bench_function("smoke", |b| b.iter(|| 2u64 + 2));
    }

    #[test]
    fn formatting_scales() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2_300_000_000.0).ends_with('s'));
    }
}
