//! Offline compatibility shim for `rand_chacha`: a real ChaCha block
//! function (djb variant: 64-bit block counter + 64-bit stream id) behind
//! the [`rand::RngCore`]/[`rand::SeedableRng`] traits.
//!
//! The property the workspace depends on is the one ChaCha is chosen for
//! upstream: a single 256-bit seed defines 2^64 *independent* streams
//! selected by [`set_stream`](ChaChaRng::set_stream), so a parallel sweep
//! can hand every grid point its own statistically independent generator
//! derived from one master seed, making results independent of thread
//! schedule.

use rand::{RngCore, SeedableRng};

/// ChaCha with a configurable round count (8/12/20 via the type aliases).
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// 64-bit stream id (state words 14–15).
    stream: u64,
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 = exhausted.
    idx: usize,
}

/// ChaCha with 8 rounds — the workspace default for Monte-Carlo streams.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    /// Selects one of the 2^64 independent streams of this seed and
    /// rewinds the stream to its start.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.idx = 16;
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, &inp) in state.iter_mut().zip(&input) {
            *word = word.wrapping_add(inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaRng { key, counter: 0, stream: 0, buf: [0; 16], idx: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_rfc7539_block_one() {
        // RFC 7539 §2.3.2 test vector, adapted to the djb layout: the RFC
        // uses a 32-bit counter + 96-bit nonce; with nonce words
        // (0x09000000, 0x4a000000, 0x00000000) and counter 1, the djb
        // layout coincides when counter = 1 | (0x09000000 << 32) fails —
        // so instead check the all-zero key/nonce/counter=0 keystream,
        // which is layout-independent and published widely.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        // First 16 keystream bytes for zero key/nonce: 76 b8 e0 ad a0 f1
        // 3d 90 40 5d 6a e5 53 86 bd 28 (little-endian words below).
        assert_eq!(first, vec![0xade0b876, 0x903df1a0, 0xe56a5d40, 0x28bd8653]);
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        a.set_stream(1);
        b.set_stream(1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        b.set_stream(2);
        let vc: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn set_stream_rewinds() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        rng.set_stream(5);
        let first = rng.next_u64();
        let _ = rng.next_u64();
        rng.set_stream(5);
        assert_eq!(rng.next_u64(), first);
    }
}
