//! Offline compatibility shim for `rayon`.
//!
//! Implements the data-parallel iterator surface the workspace uses
//! (`par_iter().map(..).collect()`, `.filter(..).count()`) on plain
//! `std::thread::scope` fan-out: items are split into one contiguous
//! chunk per thread, each chunk is processed in order, and the chunk
//! results are concatenated in order — so **results are always in input
//! order and independent of the thread count**, which is the property the
//! deterministic sweep engine builds on.
//!
//! Thread count: an installed [`ThreadPool`] override, else the
//! `RAYON_NUM_THREADS` environment variable, else available parallelism.
//! Unlike upstream there is no work-stealing pool; each adapter stage
//! evaluates eagerly. For the workspace's coarse-grained workloads
//! (whole simulator runs per item) that is the same wall-clock shape.

use std::cell::Cell;

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Fixes the worker count (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Infallible here; `Result` for API compatibility.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A scoped thread-count override (no persistent workers in this shim).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing all parallel
    /// iterators invoked (non-nested) inside it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE
            .with(|c| c.replace(self.num_threads.or_else(|| Some(current_num_threads()))));
        let out = f();
        POOL_OVERRIDE.with(|c| c.set(prev));
        out
    }
}

/// Chunked fork-join evaluation preserving input order.
fn par_eval<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let outputs: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    });
    outputs.into_iter().flatten().collect()
}

/// An eagerly evaluated parallel pipeline stage (items in input order).
pub struct ParallelPipeline<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelPipeline<T> {
    /// Parallel map.
    pub fn map<R: Send>(self, f: impl Fn(T) -> R + Sync) -> ParallelPipeline<R> {
        ParallelPipeline { items: par_eval(self.items, f) }
    }

    /// Parallel filter (predicate sees `&Item`, as in rayon).
    pub fn filter(self, pred: impl Fn(&T) -> bool + Sync) -> ParallelPipeline<T> {
        let kept = par_eval(self.items, |item| if pred(&item) { Some(item) } else { None });
        ParallelPipeline { items: kept.into_iter().flatten().collect() }
    }

    /// Number of items remaining in the pipeline.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collects the pipeline (items are already in input order).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Parallel for-each (side effects only; runs in chunked order).
    pub fn for_each(self, f: impl Fn(T) + Sync)
    where
        T: Send,
    {
        let _ = par_eval(self.items, f);
    }
}

/// `.par_iter()` on slice-like containers (yields `&T` items).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;

    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParallelPipeline<&'a Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParallelPipeline<&'a T> {
        ParallelPipeline { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParallelPipeline<&'a T> {
        ParallelPipeline { items: self.iter().collect() }
    }
}

/// `.par_iter_mut()` on slice-like containers (yields `&mut T` items).
pub trait IntoParallelRefMutIterator<'a> {
    /// Mutably borrowed item type.
    type Item: Send + 'a;

    /// Parallel iterator over mutable references.
    fn par_iter_mut(&'a mut self) -> ParallelPipeline<&'a mut Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParallelPipeline<&'a mut T> {
        ParallelPipeline { items: self.iter_mut().collect() }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParallelPipeline<&'a mut T> {
        ParallelPipeline { items: self.iter_mut().collect() }
    }
}

/// `.into_par_iter()` on owning containers.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;

    /// Parallel iterator over owned items.
    fn into_par_iter(self) -> ParallelPipeline<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParallelPipeline<T> {
        ParallelPipeline { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParallelPipeline<usize> {
        ParallelPipeline { items: self.collect() }
    }
}

/// The rayon prelude: traits needed for `.par_iter()` etc.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelPipeline,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_count_matches_serial() {
        let v: Vec<u64> = (0..10_000).collect();
        let even = v.par_iter().filter(|&&x| x % 2 == 0).count();
        assert_eq!(even, 5_000);
    }

    #[test]
    fn results_independent_of_thread_count() {
        let v: Vec<u64> = (0..777).collect();
        let serial: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| v.par_iter().map(|&x| x * x).collect());
        let parallel: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(7)
            .build()
            .unwrap()
            .install(|| v.par_iter().map(|&x| x * x).collect());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn install_overrides_and_restores() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn par_iter_mut_mutates_in_place_in_order() {
        let mut v: Vec<u64> = (0..777).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| v.par_iter_mut().for_each(|x| *x *= 3));
        assert_eq!(v, (0..777).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_ranges_and_vecs() {
        let squares: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[9], 81);
        let owned: Vec<String> =
            vec!["a".to_string(), "b".to_string()].into_par_iter().map(|s| s + "!").collect();
        assert_eq!(owned, vec!["a!", "b!"]);
    }
}
