//! Offline compatibility shim for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), integer-range and `any::<T>()` strategies,
//! `collection::{vec, btree_set}`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! no shrinking (a failing case reports its sampled inputs instead), and
//! case generation is seeded deterministically from the test's module path
//! and name, so every run explores the same cases — failures are always
//! reproducible, never flaky.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case failed (upstream: `proptest::test_runner::TestCaseError`).
/// Property bodies may `?`-propagate these; the harness reports the case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case could not be run (counted, not failed, upstream; failed here).
    Abort(String),
    /// The property does not hold for this case.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// An abort with the given reason.
    pub fn abort(reason: impl Into<String>) -> Self {
        TestCaseError::Abort(reason.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestCaseError::Abort(r) => write!(f, "abort: {r}"),
            TestCaseError::Fail(r) => write!(f, "fail: {r}"),
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies are strategies over tuples (as upstream).
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Full-domain strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// Uniform over the whole domain of `T`.
pub fn any<T: rand::StandardUniform>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: rand::StandardUniform> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// `Vec` of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy produced by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` of `element` values with a target size drawn from `size`.
    /// Best-effort on small domains: gives up growing after a bounded
    /// number of duplicate draws (like upstream's rejection limit).
    pub fn btree_set<S>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy produced by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.random_range(self.size.clone());
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 16 * target + 64 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic per-test RNG: seeded from the fully-qualified test name
/// and the case number (FNV-1a), so runs are reproducible and independent
/// tests explore independent sequences.
pub fn rng_for(test: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in test.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case)).wrapping_mul(0x9E3779B97F4A7C15))
}

/// The proptest test-definition macro: each `fn name(arg in strategy, ..)`
/// becomes a `#[test]` running `cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($cfg) $($rest)*);
    };
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng =
                        $crate::rng_for(concat!(module_path!(), "::", stringify!($name)), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // Bodies may use `?` with `TestCaseError`, so each case
                    // runs in a move closure returning `Result`.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} case {case}: {e}",
                            concat!(module_path!(), "::", stringify!($name)),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that names the property framework in its failure message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// `assert_eq!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// `assert_ne!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro samples, binds, and runs bodies.
        #[test]
        fn ranges_respected(a in 3u32..10, b in 0u64..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4);
        }

        /// Collections honor their size bounds.
        #[test]
        fn collections_sized(v in collection::vec(any::<u8>(), 0..17), s in collection::btree_set(0u32..100, 1..9)) {
            prop_assert!(v.len() < 17);
            prop_assert!(!s.is_empty() && s.len() < 9);
        }

        /// Tuple strategies compose with collections.
        #[test]
        fn tuples_sample_componentwise(pairs in collection::vec((0u64..8, 10u32..20), 1..6)) {
            for (a, b) in pairs {
                prop_assert!(a < 8);
                prop_assert!((10..20).contains(&b));
            }
        }
    }

    proptest! {
        /// Default config form (no inner attribute) also parses.
        #[test]
        fn default_config_form(x in 0u8..255) {
            prop_assert_ne!(x, 255);
        }
    }

    #[test]
    fn rng_is_deterministic_per_test_and_case() {
        use rand::RngCore;
        let a = crate::rng_for("t::x", 0).next_u64();
        let b = crate::rng_for("t::x", 0).next_u64();
        let c = crate::rng_for("t::x", 1).next_u64();
        let d = crate::rng_for("t::y", 0).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
