//! Offline compatibility shim for `bytes`: an immutable, cheaply
//! cloneable byte buffer (`Arc`-backed, O(1) clone) with the small API
//! surface the IDA crate uses.

use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
