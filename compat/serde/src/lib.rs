//! Offline compatibility shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` *names* (marker traits plus
//! no-op derive macros) so types can stay tagged for downstream
//! consumers while building without registry access. Nothing in the
//! workspace bounds on these traits; machine-readable output goes
//! through the explicit `hyperpath-bench::json` encoder.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
