//! Offline compatibility shim for `serde_derive`: the derives expand to
//! nothing. The workspace only *tags* types with
//! `#[derive(Serialize, Deserialize)]` for downstream consumers; nothing
//! in-tree bounds on the traits, and the experiment JSON output is
//! produced by the explicit `hyperpath-bench::json` encoder instead.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
