//! `hyperpath-suite` — facade over the hyperpath workspace.
//!
//! Re-exports every crate of the reproduction of Greenberg & Bhatt,
//! *Routing Multiple Paths in Hypercubes* (SPAA 1990). See the workspace
//! README for a guided tour and `examples/` for runnable entry points.

#[cfg(feature = "counting-alloc")]
pub use hyperpath_bench as bench;
pub use hyperpath_core as core;
pub use hyperpath_embedding as embedding;
pub use hyperpath_guests as guests;
pub use hyperpath_ida as ida;
pub use hyperpath_sim as sim;
pub use hyperpath_topology as topology;
