//! Fault-tolerant bulk transfer (Sections 1-2): disperse a message with
//! Rabin's IDA across the edge-disjoint paths of a width-w bundle, kill
//! random links, and reconstruct from the surviving shares — first
//! structurally (which paths survive on paper), then for real: the whole
//! phase driven through the faulty simulated machine with a retry round
//! (`sim::delivery`).
//!
//! Run with: `cargo run --example fault_tolerant_transfer --release`

use hyperpath_suite::core::cycles::theorem1;
use hyperpath_suite::ida::Ida;
use hyperpath_suite::sim::delivery::{deliver_phase, DeliveryConfig};
use hyperpath_suite::sim::faults::{random_fault_set, surviving_paths, FaultTimeline};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 10u32;
    let t1 = theorem1(n).expect("embedding");
    let w = t1.embedding.edge_paths[0].len() as u8; // paths of guest edge 0
    let k = w / 2;
    let ida = Ida::new(w, k);
    println!("== fault-tolerant transfer over {w} edge-disjoint paths, IDA({w},{k}) ==\n");

    let message: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
    let shares = ida.disperse(&message);
    println!(
        "message: {} bytes -> {} shares of {} bytes (overhead {:.2}x)",
        message.len(),
        shares.len(),
        shares[0].data.len(),
        ida.overhead()
    );

    let mut rng = StdRng::seed_from_u64(41);
    for p in [0.01f64, 0.05, 0.15] {
        let faults = random_fault_set(&t1.embedding.host, p, &mut rng);
        let alive = surviving_paths(&t1.embedding, &faults)[0];
        // Shares whose path survived:
        let ok_shares: Vec<_> = t1.embedding.edge_paths[0]
            .iter()
            .enumerate()
            .filter(|(_, path)| path.edges().all(|e| !faults.is_failed(&t1.embedding.host, e)))
            .map(|(i, _)| shares[i].clone())
            .collect();
        print!("p = {p:<5} | {} dead links | {alive}/{w} paths alive | ", faults.count() / 2);
        if ok_shares.len() >= usize::from(k) {
            let rec = ida.reconstruct(&ok_shares).expect("enough shares");
            println!("reconstructed: {}", rec == message);
        } else {
            println!("LOST (fewer than k = {k} shares survived)");
        }
    }

    // Now for real: every guest edge's message dispersed, each share
    // routed as a packet down its own disjoint path through the faulty
    // machine, reconstructed at the destination, lost shares re-sent over
    // the surviving paths.
    println!("\n== full phase on the simulated machine (k = {k}, one retry round) ==\n");
    let cfg = DeliveryConfig { threshold: usize::from(k), max_retries: 1, message_len: 64 };
    for p in [0.01f64, 0.05, 0.15] {
        let faults = random_fault_set(&t1.embedding.host, p, &mut rng);
        let r = deliver_phase(&t1.embedding, &FaultTimeline::from_set(faults), &cfg);
        println!(
            "p = {p:<5} | {:>3} shares dropped in flight | messages: {} delivered, \
             {} degraded (retry saved them), {} lost of {} | {} shares re-sent",
            r.initial.lost,
            r.delivered,
            r.degraded,
            r.lost,
            r.edges.len(),
            r.shares_resent
        );
    }
}
