//! Section 7's bit-serial routing: route a random permutation of M-flit
//! messages, either as one worm per message or split across the n CCC
//! copies of Theorem 3.
//!
//! Run with: `cargo run --example wormhole_router --release`

use hyperpath_suite::core::ccc_copies::ccc_multi_copy;
use hyperpath_suite::sim::routing::{ecube_path, random_permutation, CccRouter};
use hyperpath_suite::sim::{Worm, WormholeSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 8u32; // CCC stages; host Q_11
    let m_flits = 128u64;
    let copies = ccc_multi_copy(n).expect("Theorem 3");
    let host = copies.multi_copy.host;
    let router = CccRouter::new(&copies);
    let mut rng = StdRng::seed_from_u64(13);
    let perm = random_permutation(&host, &mut rng);
    println!("== wormhole permutation routing on Q_{}, {m_flits}-flit messages ==\n", host.dims());

    let mut single = WormholeSim::new(host);
    let mut split = WormholeSim::new(host);
    for (src, &dst) in perm.iter().enumerate() {
        let src = src as u64;
        if src == dst {
            continue;
        }
        single.add_worm(Worm { path: ecube_path(src, dst), flits: m_flits });
        for route in router.routes(src, dst) {
            split.add_worm(Worm { path: route, flits: (m_flits / u64::from(n)).max(1) });
        }
    }
    let r1 = single.run(100_000_000);
    let r2 = split.run(100_000_000);
    println!("single worm per message : makespan {}", r1.makespan);
    println!(
        "split across {n} CCC copies: makespan {} ({:.2}x)",
        r2.makespan,
        r1.makespan as f64 / r2.makespan as f64
    );
    println!("\nSplitting bounds each worm's length by M/n flits, so blocked links clear");
    println!("n times faster — the O(M) completion the paper argues for.");
}
