//! Quickstart: build the Theorem 1 multiple-path cycle embedding, validate
//! it, certify its cost, and watch the Θ(n) speedup in the simulator.
//!
//! Run with: `cargo run --example quickstart --release`

use hyperpath_suite::core::baseline::gray_cycle_embedding;
use hyperpath_suite::core::cycles::theorem1;
use hyperpath_suite::embedding::metrics::multi_path_metrics;
use hyperpath_suite::embedding::validate::validate_multi_path;
use hyperpath_suite::sim::PacketSim;

fn main() {
    let n = 10;
    println!("== hyperpath quickstart: the 2^{n}-node cycle in Q_{n} ==\n");

    // The classical Gray-code embedding (Figure 1): 1 of n links used.
    let gray = gray_cycle_embedding(n);
    let mg = multi_path_metrics(&gray);
    println!(
        "Gray code: dilation {}, congestion {}, {:.1}% of links used",
        mg.dilation,
        mg.congestion,
        100.0 * mg.utilization
    );

    // Theorem 1: every cycle edge widens to ⌊n/2⌋ edge-disjoint length-3
    // paths chosen via node moments; certified ⌊n/2⌋-packet cost 3.
    let t1 = theorem1(n).expect("construction is total for 4 <= n <= 19");
    validate_multi_path(&t1.embedding, t1.claimed_width, Some(1)).expect("machine-checked");
    let mt = multi_path_metrics(&t1.embedding);
    println!(
        "Theorem 1: width {} (claimed {}), load {}, certified {}-packet cost {}, {:.1}% links used",
        mt.width,
        t1.claimed_width,
        mt.load,
        t1.packets,
        t1.cost,
        100.0 * mt.utilization
    );

    // Race them: one phase with m packets per cycle edge.
    let m = 8 * u64::from(n);
    let g_steps = PacketSim::phase_workload(&gray, m).run(1_000_000).makespan;
    let t_steps = PacketSim::phase_workload(&t1.embedding, m).run(1_000_000).makespan;
    let sched = t1.cost * m.div_ceil(t1.packets);
    println!("\nOne phase, m = {m} packets per edge:");
    println!("  gray code:            {g_steps} steps");
    println!("  multipath (freerun):  {t_steps} steps");
    println!("  multipath (schedule): {sched} steps");
    println!("  speedup:              {:.2}x", g_steps as f64 / t_steps.min(sched) as f64);
}
