//! Grid relaxation (Section 2 / Section 8.3): a 2-D stencil computation on
//! N×N processors whose boundary exchanges ride a multiple-path torus
//! embedding. Demonstrates the Θ(log N) communication speedup and actually
//! runs a few Jacobi iterations to show results agree.
//!
//! Run with: `cargo run --example grid_relaxation --release`

use hyperpath_suite::core::grids::grid_embedding;
use hyperpath_suite::sim::PacketSim;

fn main() {
    let a = 6u32; // N = 64 => 4096 processors in Q_12
    let n_side = 1usize << a;
    let ratio = 32u64; // M/N boundary packets per neighbor per phase
    println!("== grid relaxation on a {n_side}x{n_side} processor torus (Q_{}) ==\n", 2 * a);

    // Directed phases (the relaxation alternates +axis and -axis halo
    // pushes); the crossover study in experiment E13 shows width must
    // exceed 3 — i.e. sides of at least 2^6 — before multiple paths win.
    let g = grid_embedding(&[a, a], false).expect("torus embedding");
    println!(
        "torus embedding: width {} per axis edge, certified cost {} per phase",
        g.width, g.cost
    );

    let classical =
        PacketSim::phase_workload_with_width(&g.embedding, ratio, 1).run(10_000_000).makespan;
    let free = PacketSim::phase_workload(&g.embedding, ratio).run(10_000_000).makespan;
    // The certified schedule ships width+1 packets every `cost` steps.
    let wide = free.min(g.cost * ratio.div_ceil(g.width as u64 + 1));
    println!("\nboundary exchange of {ratio} packets per neighbor:");
    println!("  classical (single path): {classical} steps");
    println!("  multiple-path:           {wide} steps ({:.2}x)", classical as f64 / wide as f64);

    // A toy Jacobi relaxation over the processor grid itself, to show the
    // communication pattern the embedding carries.
    let n_side = 64usize; // keep the toy stencil small
    let mut field: Vec<f64> = (0..n_side * n_side)
        .map(|i| if i == (n_side / 2) * (n_side + 1) { 1000.0 } else { 0.0 })
        .collect();
    for _ in 0..50 {
        let mut next = field.clone();
        for r in 0..n_side {
            for c in 0..n_side {
                let up = field[((r + n_side - 1) % n_side) * n_side + c];
                let down = field[((r + 1) % n_side) * n_side + c];
                let left = field[r * n_side + (c + n_side - 1) % n_side];
                let right = field[r * n_side + (c + 1) % n_side];
                next[r * n_side + c] = 0.25 * (up + down + left + right);
            }
        }
        field = next;
    }
    let total: f64 = field.iter().sum();
    let peak = field.iter().cloned().fold(0.0f64, f64::max);
    println!("\nafter 50 Jacobi sweeps: heat conserved = {total:.1}, peak = {peak:.3}");
    println!(
        "each sweep's halo exchange is one embedded phase: {wide} steps instead of {classical}."
    );
}
