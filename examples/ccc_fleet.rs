//! Theorem 3 up close: n independent CCC "virtual machines" time-sharing
//! one hypercube with edge-congestion 2 — every copy runs a full pipeline
//! phase simultaneously with at most 2x slowdown.
//!
//! Run with: `cargo run --example ccc_fleet --release`

use hyperpath_suite::core::ccc_copies::ccc_multi_copy;
use hyperpath_suite::embedding::metrics::multi_copy_metrics;
use hyperpath_suite::sim::{Flow, PacketSim};

fn main() {
    let n = 8u32;
    let fleet = ccc_multi_copy(n).expect("Theorem 3");
    let m = multi_copy_metrics(&fleet.multi_copy);
    println!(
        "== {} CCC_{} copies in Q_{} ==",
        fleet.multi_copy.num_copies(),
        n,
        fleet.multi_copy.host.dims()
    );
    println!(
        "dilation {}, edge congestion {} (the theorem's bound, exactly)\n",
        m.dilation, m.edge_congestion
    );

    // One phase: every CCC vertex sends a packet along its straight and
    // cross edges, in every copy at once.
    let mut sim = PacketSim::new(fleet.multi_copy.host);
    for copy in &fleet.multi_copy.copies {
        for path in &copy.edge_paths {
            sim.add_flow(Flow { path: path.nodes().to_vec(), packets: 1 });
        }
    }
    let r = sim.run(1_000_000);
    println!("one full phase of ALL {} copies simultaneously:", fleet.multi_copy.num_copies());
    println!("  makespan {} steps (congestion-2 bound: 2)", r.makespan);
    println!(
        "  {} packets delivered, mean link utilization {:.1}%",
        r.delivered,
        100.0 * r.mean_utilization
    );
}
