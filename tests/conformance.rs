//! Conformance suite: every theorem's certified schedule, compiled into
//! the simulator, achieves exactly its certified cost.
//!
//! `sim::run_schedule` replays a [`PhaseSchedule`] transmission by
//! transmission under the simulator's link-conflict semantics, so a passing
//! row is an end-to-end check that the constructive proof (the schedule)
//! and the machine model (the simulator) agree on the claimed `p`-packet
//! cost — Theorem 1's cost 3, Theorem 2's per-residue costs, and
//! Theorem 4's `c + 2δ`.

use hyperpath_suite::core::baseline::multi_copy_cycles;
use hyperpath_suite::core::cycles::{theorem1, theorem2, CycleEmbedding, Theorem2Variant};
use hyperpath_suite::core::induced::theorem4;
use hyperpath_suite::embedding::MultiPathEmbedding;
use hyperpath_suite::embedding::PhaseSchedule;
use hyperpath_suite::sim::run_schedule;

/// Replays `schedule` in the simulator and checks the measured makespan
/// equals the certified cost (with the right packet count per guest edge).
fn assert_schedule_achieves(
    label: &str,
    e: &MultiPathEmbedding,
    schedule: &PhaseSchedule,
    packets: u64,
    cost: u64,
) {
    let (p, c) = schedule.certified_cost(e).unwrap_or_else(|err| panic!("{label}: {err}"));
    assert_eq!(p, packets, "{label}: packets per edge");
    assert_eq!(c, cost, "{label}: certified cost");
    let r = run_schedule(e, schedule).unwrap_or_else(|err| panic!("{label}: simulator: {err}"));
    assert_eq!(r.makespan, cost, "{label}: measured makespan != certified cost");
    assert_eq!(r.delivered, schedule.transmissions.len() as u64, "{label}: deliveries");
}

fn check_cycle_theorem(label: &str, t: &CycleEmbedding, want_width: usize, want_cost: u64) {
    assert_eq!(t.claimed_width, want_width, "{label}: claimed width");
    assert_eq!(t.cost, want_cost, "{label}: certified cost");
    assert_schedule_achieves(label, &t.embedding, &t.schedule, t.packets, t.cost);
}

/// Theorem 1 over `n = 4..=10`: width `⌊n/2⌋`, cost 3 (every such `n` has
/// `2⌊n/4⌋` a power of two, the paper's implicit assumption).
#[test]
fn theorem1_schedules_achieve_cost_3() {
    for n in 4..=10u32 {
        let t1 = theorem1(n).unwrap();
        check_cycle_theorem(&format!("theorem1(n={n})"), &t1, (n / 2) as usize, 3);
    }
}

/// Theorem 2 over `n = 4..=10`, both variants, per-residue widths/costs
/// (the table in the `theorem2` docs):
/// residues 0, 1 → width `⌊n/2⌋` cost 3 for both variants; residues 2, 3 →
/// `Cost3` gives width `⌊n/2⌋ - 1` cost 3, `FullWidth` width `⌊n/2⌋` cost 4.
#[test]
fn theorem2_schedules_achieve_per_residue_costs() {
    for n in 4..=10u32 {
        let half = (n / 2) as usize;
        let (w3, c3, wf, cf) = match n % 4 {
            0 | 1 => (half, 3, half, 3),
            _ => (half - 1, 3, half, 4),
        };
        let t = theorem2(n, Theorem2Variant::Cost3).unwrap();
        check_cycle_theorem(&format!("theorem2(n={n}, Cost3)"), &t, w3, c3);
        let t = theorem2(n, Theorem2Variant::FullWidth).unwrap();
        check_cycle_theorem(&format!("theorem2(n={n}, FullWidth)"), &t, wf, cf);
    }
}

/// Theorem 4 on the Lemma 1 cycle copies: the induced cross product's
/// schedule executes at its certified cost. At `n = 4` that cost equals the
/// paper's claimed `c + 2δ = 3` exactly; at `n = 6` the natural schedule
/// collides and the phase-aligned fallback certifies 4 (the same
/// power-of-two regime gap as Theorem 1 at `n = 12` — see DESIGN.md).
#[test]
fn theorem4_schedules_achieve_certified_cost() {
    for (n, want_cost, want_natural) in [(4u32, 3u64, true), (6, 4, false)] {
        let copies = multi_copy_cycles(n).unwrap();
        let (x, claimed) = theorem4(&copies).unwrap();
        let label = format!("theorem4(n={n})");
        assert_eq!(claimed, 3, "{label}: claimed c + 2δ");
        assert_eq!(x.cost, want_cost, "{label}: certified cost");
        assert_eq!(x.natural_schedule_ok, want_natural, "{label}: schedule kind");
        assert_eq!(x.packets, u64::from(n), "{label}: width-n bundles ship n packets");
        assert_schedule_achieves(&label, &x.embedding, &x.schedule, x.packets, x.cost);
    }
}
