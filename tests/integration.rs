//! Cross-crate integration tests: every theorem's output drives the
//! simulator and the measured step counts agree with the certified costs.

use hyperpath_suite::core::baseline::{gray_cycle_embedding, multi_copy_cycles};
use hyperpath_suite::core::bounds::verify_lemma3_counting;
use hyperpath_suite::core::ccc_copies::ccc_multi_copy;
use hyperpath_suite::core::cycles::{theorem1, theorem2, Theorem2Variant};
use hyperpath_suite::core::grids::grid_embedding;
use hyperpath_suite::core::induced::theorem4;
use hyperpath_suite::core::large_copy::large_copy_cycle;
use hyperpath_suite::core::trees::theorem5;
use hyperpath_suite::embedding::metrics::{multi_copy_metrics, multi_path_metrics};
use hyperpath_suite::embedding::validate::{validate_multi_copy, validate_multi_path};
use hyperpath_suite::ida::Ida;
use hyperpath_suite::sim::faults::{random_fault_set, surviving_paths};
use hyperpath_suite::sim::PacketSim;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The certified schedule is executable: driving the simulator with one
/// batch of `packets` per edge finishes within the certified cost.
#[test]
fn certified_cost_is_achieved_in_simulation() {
    for n in [8u32, 9] {
        let t1 = theorem1(n).unwrap();
        // One batch: `packets` packets per edge over the bundle.
        let r = PacketSim::phase_workload(&t1.embedding, t1.packets).run(1_000_000);
        // Free-running may reorder across step classes, but a single batch
        // stays within a small factor of the certified cost.
        assert!(
            r.makespan <= 2 * t1.cost + 2,
            "n={n}: simulated batch took {} vs certified {}",
            r.makespan,
            t1.cost
        );
    }
}

#[test]
fn theorem1_against_gray_end_to_end() {
    let n = 10u32;
    let m = 80u64;
    let gray = gray_cycle_embedding(n);
    let t1 = theorem1(n).unwrap();
    let g = PacketSim::phase_workload(&gray, m).run(1_000_000).makespan;
    let w = PacketSim::phase_workload(&t1.embedding, m).run(1_000_000).makespan;
    let sched = t1.cost * m.div_ceil(t1.packets);
    assert_eq!(g, m);
    assert!(w.min(sched) * 3 < m * 2, "multipath must clearly win at n=10");
}

#[test]
fn theorem2_respects_lemma3_and_simulates() {
    for n in [8u32, 10] {
        let t2 = theorem2(n, Theorem2Variant::Cost3).unwrap();
        verify_lemma3_counting(n, t2.claimed_width as u32, t2.cost).unwrap();
        validate_multi_path(&t2.embedding, t2.claimed_width, Some(2)).unwrap();
        let r = PacketSim::phase_workload(&t2.embedding, t2.claimed_width as u64).run(1_000_000);
        assert!(r.makespan <= 2 * t2.cost + 2, "n={n}: {} vs {}", r.makespan, t2.cost);
    }
}

#[test]
fn lemma1_copies_fill_the_cube() {
    let mc = multi_copy_cycles(8).unwrap();
    validate_multi_copy(&mc).unwrap();
    let m = multi_copy_metrics(&mc);
    assert_eq!((m.copies, m.dilation, m.edge_congestion), (8, 1, 1));
    assert!((m.utilization - 1.0).abs() < 1e-12);
}

#[test]
fn ccc_fleet_phase_takes_two_steps() {
    let fleet = ccc_multi_copy(8).unwrap();
    let m = multi_copy_metrics(&fleet.multi_copy);
    assert_eq!(m.edge_congestion, 2);
    let mut sim = PacketSim::new(fleet.multi_copy.host);
    for copy in &fleet.multi_copy.copies {
        for path in &copy.edge_paths {
            sim.add_flow(hyperpath_suite::sim::Flow { path: path.nodes().to_vec(), packets: 1 });
        }
    }
    let r = sim.run(1_000);
    assert_eq!(r.makespan, 2, "congestion 2 = two steps for a full fleet phase");
}

#[test]
fn theorem4_reproduces_theorem1_shape() {
    let copies = multi_copy_cycles(4).unwrap();
    let (x, claimed) = theorem4(&copies).unwrap();
    assert_eq!((x.cost, claimed), (3, 3));
    let r = PacketSim::phase_workload(&x.embedding, 4).run(100_000);
    assert!(r.makespan <= 8);
}

#[test]
fn grids_compose_and_run() {
    let g = grid_embedding(&[4, 4], false).unwrap();
    assert_eq!(g.cost, 3);
    let m = multi_path_metrics(&g.embedding);
    assert_eq!(m.load, 1);
    let r = PacketSim::phase_workload(&g.embedding, 6).run(100_000);
    assert!(r.makespan <= 12);
}

#[test]
fn tree_embedding_phase_is_constant_cost() {
    let t5 = theorem5(4).unwrap();
    let m = multi_path_metrics(&t5.embedding);
    assert_eq!(m.load, 1);
    let r = PacketSim::phase_workload(&t5.embedding, t5.width as u64).run(100_000);
    assert!(r.makespan <= 2 * t5.cost, "{} vs {}", r.makespan, t5.cost);
}

#[test]
fn large_copy_cycle_saturates_links() {
    let e = large_copy_cycle(8).unwrap();
    let r = PacketSim::phase_workload(&e, 1).run(1_000);
    assert_eq!(r.makespan, 1, "dilation 1, congestion 1: a phase is one step");
    assert!((r.mean_utilization - 1.0).abs() < 1e-12, "every link busy");
}

#[test]
fn ida_over_faulty_multipaths_end_to_end() {
    let t1 = theorem1(8).unwrap();
    let w = t1.embedding.edge_paths[0].len() as u8;
    let ida = Ida::new(w, w / 2);
    let message: Vec<u8> = (0..2048u32).map(|i| (i % 256) as u8).collect();
    let shares = ida.disperse(&message);
    let mut rng = StdRng::seed_from_u64(17);
    let faults = random_fault_set(&t1.embedding.host, 0.02, &mut rng);
    let alive = surviving_paths(&t1.embedding, &faults);
    // Reconstruct guest edge 0's message from its surviving shares.
    let ok: Vec<_> = t1.embedding.edge_paths[0]
        .iter()
        .enumerate()
        .filter(|(_, p)| p.edges().all(|e| !faults.is_failed(&t1.embedding.host, e)))
        .map(|(i, _)| shares[i].clone())
        .collect();
    assert_eq!(ok.len(), alive[0]);
    if ok.len() >= usize::from(w / 2) {
        assert_eq!(ida.reconstruct(&ok).unwrap(), message);
    }
}
